//! The dynamically typed value model.
//!
//! EFind's interfaces (Figure 2 of the paper) pass Hadoop `Writable`s between
//! `preProcess`, `lookup`, and `postProcess`. [`Datum`] is the Rust
//! equivalent: an owned, ordered, hashable value with a well-defined binary
//! encoding and a byte-size measure. The size measure feeds the cost model
//! (every `S*` term in Table 1 is a sum of `Datum::size_bytes`).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::error::{Error, Result};

/// A dynamically typed value.
///
/// `Datum` implements total ordering and hashing (floats order by
/// `total_cmp` and hash by bit pattern), so it can serve as a MapReduce key,
/// an index lookup key, or a cache key.
#[derive(Clone, Debug, Default)]
pub enum Datum {
    /// The absent value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. Ordered with `total_cmp`, hashed by bit pattern.
    Float(f64),
    /// A UTF-8 string.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
    /// A heterogeneous list, used for composite keys and carrier records.
    List(Vec<Datum>),
}

/// The static type of an index lookup key.
///
/// Used by the static plan analyzer to catch key-type mismatches between
/// what an operator's `preProcess` emits and what an accessor expects
/// (diagnostic `EF007`) before the job runs. `Any` means "undeclared /
/// accepts everything" and is compatible with every kind, so declaring
/// kinds is always opt-in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum KeyKind {
    /// Undeclared; compatible with every kind.
    #[default]
    Any,
    /// [`Datum::Bool`] keys.
    Bool,
    /// [`Datum::Int`] keys.
    Int,
    /// [`Datum::Float`] keys.
    Float,
    /// [`Datum::Text`] keys.
    Text,
    /// [`Datum::Bytes`] keys.
    Bytes,
    /// [`Datum::List`] (composite) keys.
    List,
}

impl KeyKind {
    /// True when a key of kind `self` can be served by an accessor
    /// declaring `other` (either side being [`KeyKind::Any`] matches).
    pub fn compatible(self, other: KeyKind) -> bool {
        self == KeyKind::Any || other == KeyKind::Any || self == other
    }

    /// Short label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            KeyKind::Any => "any",
            KeyKind::Bool => "bool",
            KeyKind::Int => "int",
            KeyKind::Float => "float",
            KeyKind::Text => "text",
            KeyKind::Bytes => "bytes",
            KeyKind::List => "list",
        }
    }
}

impl Datum {
    /// Returns a stable discriminant used for cross-variant ordering and the
    /// binary encoding tag.
    fn tag(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 2,
            Datum::Float(_) => 3,
            Datum::Text(_) => 4,
            Datum::Bytes(_) => 5,
            Datum::List(_) => 6,
        }
    }

    /// Approximate serialized size in bytes.
    ///
    /// This is the measure behind every size statistic in the paper's cost
    /// model (Table 1). It matches the length of [`Datum::encode`] output to
    /// within the varint headers.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Datum::Null => 1,
            Datum::Bool(_) => 2,
            Datum::Int(_) => 9,
            Datum::Float(_) => 9,
            Datum::Text(s) => 5 + s.len() as u64,
            Datum::Bytes(b) => 5 + b.len() as u64,
            Datum::List(items) => 5 + items.iter().map(Datum::size_bytes).sum::<u64>(),
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload; integers are widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Datum::Float(v) => Some(*v),
            Datum::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte payload, if this is `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Datum::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Datum]> {
        match self {
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// Consumes the datum and returns the list payload, if this is a `List`.
    pub fn into_list(self) -> Option<Vec<Datum>> {
        match self {
            Datum::List(items) => Some(items),
            _ => None,
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// Builds a composite key from parts.
    pub fn composite(parts: impl IntoIterator<Item = Datum>) -> Datum {
        Datum::List(parts.into_iter().collect())
    }

    /// Appends the binary encoding of `self` to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        match self {
            Datum::Null => {}
            Datum::Bool(v) => out.push(*v as u8),
            Datum::Int(v) => out.extend_from_slice(&v.to_le_bytes()),
            Datum::Float(v) => out.extend_from_slice(&v.to_bits().to_le_bytes()),
            Datum::Text(s) => {
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Datum::Bytes(b) => {
                out.extend_from_slice(&(b.len() as u32).to_le_bytes());
                out.extend_from_slice(b);
            }
            Datum::List(items) => {
                out.extend_from_slice(&(items.len() as u32).to_le_bytes());
                for item in items {
                    item.encode_into(out);
                }
            }
        }
    }

    /// Returns the binary encoding of `self`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes() as usize);
        self.encode_into(&mut out);
        out
    }

    /// Decodes one datum from the front of `buf`, returning it and the rest.
    pub fn decode_from(buf: &[u8]) -> Result<(Datum, &[u8])> {
        let (&tag, rest) = buf
            .split_first()
            .ok_or_else(|| Error::Decode("empty buffer".into()))?;
        match tag {
            0 => Ok((Datum::Null, rest)),
            1 => {
                let (&b, rest) = rest
                    .split_first()
                    .ok_or_else(|| Error::Decode("truncated bool".into()))?;
                Ok((Datum::Bool(b != 0), rest))
            }
            2 => {
                let (head, rest) = split_n(rest, 8, "int")?;
                Ok((
                    Datum::Int(i64::from_le_bytes(head.try_into().unwrap())),
                    rest,
                ))
            }
            3 => {
                let (head, rest) = split_n(rest, 8, "float")?;
                let bits = u64::from_le_bytes(head.try_into().unwrap());
                Ok((Datum::Float(f64::from_bits(bits)), rest))
            }
            4 => {
                let (payload, rest) = split_len_prefixed(rest, "text")?;
                let s = std::str::from_utf8(payload)
                    .map_err(|e| Error::Decode(format!("invalid utf-8: {e}")))?;
                Ok((Datum::Text(s.to_owned()), rest))
            }
            5 => {
                let (payload, rest) = split_len_prefixed(rest, "bytes")?;
                Ok((Datum::Bytes(payload.to_vec()), rest))
            }
            6 => {
                let (head, mut rest) = split_n(rest, 4, "list len")?;
                let n = u32::from_le_bytes(head.try_into().unwrap()) as usize;
                let mut items = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let (item, r) = Datum::decode_from(rest)?;
                    items.push(item);
                    rest = r;
                }
                Ok((Datum::List(items), rest))
            }
            other => Err(Error::Decode(format!("unknown datum tag {other}"))),
        }
    }

    /// Decodes a datum that must consume the whole buffer.
    pub fn decode(buf: &[u8]) -> Result<Datum> {
        let (d, rest) = Datum::decode_from(buf)?;
        if rest.is_empty() {
            Ok(d)
        } else {
            Err(Error::Decode(format!("{} trailing bytes", rest.len())))
        }
    }
}

fn split_n<'a>(buf: &'a [u8], n: usize, what: &str) -> Result<(&'a [u8], &'a [u8])> {
    if buf.len() < n {
        return Err(Error::Decode(format!("truncated {what}")));
    }
    Ok(buf.split_at(n))
}

fn split_len_prefixed<'a>(buf: &'a [u8], what: &str) -> Result<(&'a [u8], &'a [u8])> {
    let (head, rest) = split_n(buf, 4, what)?;
    let len = u32::from_le_bytes(head.try_into().unwrap()) as usize;
    split_n(rest, len, what)
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Datum {}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Datum {
    fn cmp(&self, other: &Self) -> Ordering {
        use Datum::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Mixed numerics compare by value so `Int(1) < Float(1.5)` holds,
            // with total_cmp tie-break falling back to tag order.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b).then(Ordering::Less),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)).then(Ordering::Greater),
            (Text(a), Text(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u8(self.tag());
        match self {
            Datum::Null => {}
            Datum::Bool(v) => state.write_u8(*v as u8),
            Datum::Int(v) => state.write_i64(*v),
            Datum::Float(v) => state.write_u64(v.to_bits()),
            Datum::Text(s) => state.write(s.as_bytes()),
            Datum::Bytes(b) => state.write(b),
            Datum::List(items) => {
                state.write_usize(items.len());
                for item in items {
                    item.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "null"),
            Datum::Bool(v) => write!(f, "{v}"),
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Float(v) => write!(f, "{v}"),
            Datum::Text(s) => write!(f, "{s}"),
            Datum::Bytes(b) => write!(f, "<{} bytes>", b.len()),
            Datum::List(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}

impl From<i32> for Datum {
    fn from(v: i32) -> Self {
        Datum::Int(v as i64)
    }
}

impl From<u32> for Datum {
    fn from(v: u32) -> Self {
        Datum::Int(v as i64)
    }
}

impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}

impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Text(v.to_owned())
    }
}

impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Text(v)
    }
}

impl From<Vec<u8>> for Datum {
    fn from(v: Vec<u8>) -> Self {
        Datum::Bytes(v)
    }
}

impl From<Vec<Datum>> for Datum {
    fn from(v: Vec<Datum>) -> Self {
        Datum::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(d: &Datum) -> u64 {
        let mut h = DefaultHasher::new();
        d.hash(&mut h);
        h.finish()
    }

    #[test]
    fn roundtrip_all_variants() {
        let values = vec![
            Datum::Null,
            Datum::Bool(true),
            Datum::Bool(false),
            Datum::Int(-42),
            Datum::Int(i64::MAX),
            Datum::Float(3.5),
            Datum::Float(f64::NEG_INFINITY),
            Datum::Text("hello world".into()),
            Datum::Text(String::new()),
            Datum::Bytes(vec![0, 255, 1, 2]),
            Datum::List(vec![Datum::Int(1), Datum::Text("x".into()), Datum::Null]),
            Datum::List(vec![]),
        ];
        for v in values {
            let enc = v.encode();
            let dec = Datum::decode(&enc).unwrap();
            assert_eq!(v, dec, "roundtrip of {v:?}");
        }
    }

    #[test]
    fn nested_list_roundtrip() {
        let v = Datum::List(vec![
            Datum::List(vec![Datum::Int(1), Datum::Int(2)]),
            Datum::List(vec![Datum::Text("a".into())]),
        ]);
        assert_eq!(Datum::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn decode_rejects_trailing_bytes() {
        let mut enc = Datum::Int(5).encode();
        enc.push(0);
        assert!(Datum::decode(&enc).is_err());
    }

    #[test]
    fn decode_rejects_truncation() {
        let enc = Datum::Text("hello".into()).encode();
        for cut in 0..enc.len() {
            assert!(Datum::decode(&enc[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn ordering_within_variant() {
        assert!(Datum::Int(1) < Datum::Int(2));
        assert!(Datum::Text("a".into()) < Datum::Text("b".into()));
        assert!(Datum::Float(1.0) < Datum::Float(2.0));
        assert!(Datum::Bytes(vec![1]) < Datum::Bytes(vec![2]));
        assert!(Datum::List(vec![Datum::Int(1)]) < Datum::List(vec![Datum::Int(2)]));
    }

    #[test]
    fn ordering_across_variants_is_total() {
        let vals = [
            Datum::Null,
            Datum::Bool(false),
            Datum::Int(0),
            Datum::Text("".into()),
            Datum::Bytes(vec![]),
            Datum::List(vec![]),
        ];
        for a in &vals {
            for b in &vals {
                let ab = a.cmp(b);
                let ba = b.cmp(a);
                assert_eq!(ab, ba.reverse());
            }
        }
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert!(Datum::Int(1) < Datum::Float(1.5));
        assert!(Datum::Float(0.5) < Datum::Int(1));
    }

    #[test]
    fn float_nan_is_orderable_and_hashable() {
        let nan = Datum::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert_eq!(hash_of(&nan), hash_of(&nan));
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Datum::List(vec![Datum::Int(7), Datum::Text("k".into())]);
        let b = Datum::List(vec![Datum::Int(7), Datum::Text("k".into())]);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn size_bytes_tracks_encoding_length() {
        let values = vec![
            Datum::Null,
            Datum::Int(9),
            Datum::Text("abcdef".into()),
            Datum::Bytes(vec![1; 100]),
            Datum::List(vec![Datum::Int(1); 10]),
        ];
        for v in values {
            let enc_len = v.encode().len() as u64;
            let sz = v.size_bytes();
            assert!(
                sz >= enc_len && sz <= enc_len + 8,
                "size {sz} vs encoding {enc_len} for {v:?}"
            );
        }
    }

    #[test]
    fn accessors() {
        assert_eq!(Datum::Int(3).as_int(), Some(3));
        assert_eq!(Datum::Int(3).as_float(), Some(3.0));
        assert_eq!(Datum::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Datum::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Datum::Bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert!(Datum::Null.is_null());
        assert_eq!(Datum::Text("x".into()).as_int(), None);
    }
}
