//! Seeded deterministic `[0, 1)` draws — the one audited implementation
//! behind every injection plan in the workspace.
//!
//! Three layers inject misbehavior (index faults in `efind-core::fault`,
//! node crashes in `efind-cluster::chaos`, data corruption in
//! `efind-cluster::corrupt`), and all of them need the same property: a
//! decision that is a *pure function* of a seed and the decision's
//! identity — no wall clock, no shared RNG stream, no thread-interleaving
//! sensitivity. Each plan used to hand-roll the same fx-hash construction;
//! this module is the single shared copy.
//!
//! The construction: hash `seed (LE bytes) ++ scope ++ payload` with
//! [`fx_hash_bytes`], keep the top 53 bits as a uniform mantissa, and
//! scale to `[0, 1)`. The `scope` string namespaces independent decision
//! streams (e.g. `"chaos.node"` vs `"chaos.time"`) so they never
//! correlate even for equal payloads.

use crate::fx_hash_bytes;

/// Pure `[0, 1)` draw from `(seed, scope, payload)`.
///
/// Deterministic and byte-exact: two calls with identical arguments return
/// the identical float on every platform and every run. Callers encode the
/// decision's identity (key bytes, attempt number, replica index, ...)
/// into `payload`.
pub fn draw_unit(seed: u64, scope: &str, payload: &[u8]) -> f64 {
    let mut buf = Vec::with_capacity(8 + scope.len() + payload.len());
    buf.extend_from_slice(&seed.to_le_bytes());
    buf.extend_from_slice(scope.as_bytes());
    buf.extend_from_slice(payload);
    // 53 uniform mantissa bits → u ∈ [0, 1).
    (fx_hash_bytes(&buf) >> 11) as f64 / (1u64 << 53) as f64
}

/// [`draw_unit`] specialized to a single `u64` key payload (LE-encoded) —
/// the common case for plans whose decisions are indexed by one integer.
pub fn draw_unit_u64(seed: u64, scope: &str, key: u64) -> f64 {
    draw_unit(seed, scope, &key.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        let a = draw_unit(7, "s", b"payload");
        let b = draw_unit(7, "s", b"payload");
        assert_eq!(a, b);
        assert_eq!(draw_unit_u64(7, "s", 42), draw_unit_u64(7, "s", 42));
    }

    #[test]
    fn draws_land_in_unit_interval() {
        for i in 0..1000u64 {
            let u = draw_unit_u64(0xDEAD, "range", i);
            assert!((0.0..1.0).contains(&u), "u={u}");
        }
    }

    #[test]
    fn seed_scope_and_payload_all_matter() {
        let base = draw_unit(1, "scope", b"k");
        assert_ne!(base, draw_unit(2, "scope", b"k"));
        assert_ne!(base, draw_unit(1, "other", b"k"));
        assert_ne!(base, draw_unit(1, "scope", b"j"));
    }

    #[test]
    fn u64_helper_matches_le_payload() {
        // The specialization must be byte-compatible with the general
        // form — plans migrated from hand-rolled draws depend on it.
        let key: u64 = 0x0123_4567_89AB_CDEF;
        assert_eq!(
            draw_unit_u64(9, "chaos.node", key),
            draw_unit(9, "chaos.node", &key.to_le_bytes())
        );
    }

    #[test]
    fn draws_are_roughly_uniform() {
        let mut buckets = [0usize; 10];
        for i in 0..10_000u64 {
            let u = draw_unit_u64(3, "uniform", i);
            buckets[(u * 10.0) as usize] += 1;
        }
        let min = *buckets.iter().min().unwrap();
        let max = *buckets.iter().max().unwrap();
        assert!(min > 800 && max < 1200, "skewed buckets: {buckets:?}");
    }
}
