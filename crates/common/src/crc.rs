//! CRC-32 checksums for end-to-end data integrity.
//!
//! The DFS computes a CRC over each chunk's encoded records at write time
//! and re-verifies it at every read boundary; the lookup cache and the
//! shuffle path do the same for their payloads. This is the standard
//! reflected CRC-32 (polynomial `0xEDB88320`, the IEEE 802.3 / zlib /
//! HDFS variant), table-driven, implemented here to avoid a dependency.

/// The reflected CRC-32 polynomial (IEEE 802.3).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Streaming CRC-32 state: feed bytes with [`update`](Crc32::update),
/// read the digest with [`finish`](Crc32::finish).
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh CRC over zero bytes.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The CRC-32 of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let mut data = vec![0u8; 256];
        let clean = crc32(&data);
        data[77] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
