//! Human-readable formatting helpers for reports and the figure harness.

/// Formats a byte count with a binary-prefix unit.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit + 1 < UNITS.len() {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[unit])
    }
}

/// Formats a duration in seconds adaptively (µs/ms/s).
pub fn human_secs(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Left-pads `s` to `width` characters.
pub fn pad(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn secs_units() {
        assert_eq!(human_secs(0.0000005), "0.5 µs");
        assert_eq!(human_secs(0.25), "250.00 ms");
        assert_eq!(human_secs(12.5), "12.50 s");
    }

    #[test]
    fn padding() {
        assert_eq!(pad("x", 4), "   x");
    }
}
