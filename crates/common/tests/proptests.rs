//! Property-based tests for the value model and FM sketch.

use efind_common::{Datum, FmSketch, Record};
use proptest::prelude::*;

fn arb_datum() -> impl Strategy<Value = Datum> {
    let leaf = prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        any::<i64>().prop_map(Datum::Int),
        any::<f64>().prop_map(Datum::Float),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Datum::Text),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Datum::Bytes),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..6).prop_map(Datum::List)
    })
}

proptest! {
    #[test]
    fn datum_encode_decode_roundtrip(d in arb_datum()) {
        let enc = d.encode();
        let dec = Datum::decode(&enc).unwrap();
        prop_assert_eq!(&dec, &d);
        // Size estimate stays close to the actual encoding.
        prop_assert!(d.size_bytes() >= enc.len() as u64);
    }

    #[test]
    fn record_roundtrip(k in arb_datum(), v in arb_datum()) {
        let rec = Record { key: k, value: v };
        prop_assert_eq!(Record::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn datum_ordering_is_total_and_antisymmetric(a in arb_datum(), b in arb_datum(), c in arb_datum()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
        // Transitivity on the ≤ relation.
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
    }

    #[test]
    fn equal_datums_hash_equal(a in arb_datum()) {
        use std::hash::{Hash, Hasher};
        let b = Datum::decode(&a.encode()).unwrap();
        let mut ha = efind_common::FxHasher::default();
        let mut hb = efind_common::FxHasher::default();
        a.hash(&mut ha);
        b.hash(&mut hb);
        prop_assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn fm_estimate_never_explodes(keys in proptest::collection::vec(any::<i64>(), 1..2000)) {
        let mut sketch = FmSketch::default();
        let mut distinct = std::collections::HashSet::new();
        for k in &keys {
            sketch.insert(&Datum::Int(*k));
            distinct.insert(*k);
        }
        let est = sketch.estimate();
        let n = distinct.len() as f64;
        // Generous bound: the sketch must stay within a small constant
        // factor of the truth for any input distribution.
        prop_assert!(est <= n * 4.0 + 16.0, "est={est} n={n}");
        prop_assert!(est >= n / 4.0 - 16.0, "est={est} n={n}");
    }

    #[test]
    fn fm_merge_is_idempotent_and_commutative(
        xs in proptest::collection::vec(any::<i64>(), 0..500),
        ys in proptest::collection::vec(any::<i64>(), 0..500),
    ) {
        let mut a = FmSketch::default();
        let mut b = FmSketch::default();
        for x in &xs { a.insert(&Datum::Int(*x)); }
        for y in &ys { b.insert(&Datum::Int(*y)); }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut abb = ab.clone();
        abb.merge(&b);
        prop_assert_eq!(&abb, &ab);
    }
}
