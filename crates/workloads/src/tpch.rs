//! TPC-H-shaped generator and the Q3/Q9 index-nested-loop-join jobs
//! (§5.1–5.2, Fig. 11(b)–(e)).
//!
//! The paper composes MapReduce jobs following MySQL's join order, with
//! LineItem as the main input and indices on every other table: *"For Q3,
//! the job first joins LineItem with Orders, then with Customer. For Q9,
//! the job first joins LineItem with Supplier, then with Part, PartSupply,
//! Orders, and finally with Nation."* Each join becomes one EFind head
//! operator with one index.
//!
//! The generator reproduces the two key correlations behind the paper's
//! results: lineitems of one order are stored *consecutively* (so Q3's
//! Orders lookups have strong task-local redundancy and the cache wins),
//! while `l_suppkey` is uniform random (so Q9's Supplier lookups have no
//! locality and only re-partitioning removes the redundancy).
//! `dup_lineitem = 10` reproduces the DUP10 variants.

use std::sync::Arc;

use efind::{operator_fn, BoundOperator, EFindConfig, IndexJobConf, Strategy};
use efind_cluster::Cluster;
use efind_common::{Datum, FxHashMap, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_index::{KvStore, KvStoreConfig};
use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::Scenario;

/// Q3's date cutoff (days since epoch): `o_orderdate < CUTOFF` and
/// `l_shipdate > CUTOFF`.
pub const Q3_DATE_CUTOFF: i64 = 1200;
/// Q3's market segment filter.
pub const Q3_SEGMENT: &str = "BUILDING";
/// Q9's part-name token filter (`p_name like '%green%'`).
pub const Q9_COLOR: &str = "green";

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const COLORS: [&str; 30] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cornsilk",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "green",
];
const NATIONS: usize = 25;

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct TpchConfig {
    /// TPC-H scale factor (1.0 = 6M lineitems; the reproduction default
    /// is 0.01).
    pub scale: f64,
    /// LineItem duplication factor (10 = the paper's DUP10).
    pub dup_lineitem: usize,
    /// Input chunks for the LineItem file.
    pub chunks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale: 0.03,
            dup_lineitem: 1,
            chunks: 150,
            seed: 0x79C4,
        }
    }
}

/// The generated database.
pub struct TpchData {
    /// LineItem as MapReduce records:
    /// `value = [orderkey, partkey, suppkey, qty, extprice, discount, shipdate]`.
    pub lineitem: Vec<Record>,
    /// `orderkey → [custkey, orderdate, shippriority]`.
    pub orders: Vec<(Datum, Vec<Datum>)>,
    /// `custkey → [mktsegment, nationkey]`.
    pub customer: Vec<(Datum, Vec<Datum>)>,
    /// `suppkey → [name, nationkey]`.
    pub supplier: Vec<(Datum, Vec<Datum>)>,
    /// `partkey → [name, type]`.
    pub part: Vec<(Datum, Vec<Datum>)>,
    /// `[partkey, suppkey] → [supplycost]`.
    pub partsupp: Vec<(Datum, Vec<Datum>)>,
    /// `nationkey → [name]`.
    pub nation: Vec<(Datum, Vec<Datum>)>,
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(4)
}

/// Dimension tables shrink less than the fact table: the paper's regime
/// has far more distinct supplier/part/customer keys than the 1024-entry
/// lookup cache, and a faithful reproduction must keep that inequality
/// even at tiny scale factors (otherwise the cache degenerates to a full
/// mirror of the index and Q9's redundancy structure disappears).
fn scaled_dim(base: usize, scale: f64, floor: usize) -> usize {
    ((base as f64 * scale) as usize).max(floor)
}

fn supplier_of_part(partkey: i64, j: i64, num_suppliers: i64) -> i64 {
    (partkey + j * (num_suppliers / 4).max(1)) % num_suppliers
}

/// Generates all tables at the configured scale.
pub fn generate(config: &TpchConfig) -> TpchData {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let n_supp = scaled_dim(10_000, config.scale, 3_000) as i64;
    let n_part = scaled_dim(200_000, config.scale, 10_000) as i64;
    let n_cust = scaled_dim(150_000, config.scale, 7_500) as i64;
    let n_orders = scaled(1_500_000, config.scale) as i64;

    let supplier: Vec<(Datum, Vec<Datum>)> = (0..n_supp)
        .map(|s| {
            (
                Datum::Int(s),
                vec![
                    Datum::Text(format!("Supplier#{s:09}")),
                    Datum::Int(s % NATIONS as i64),
                ],
            )
        })
        .collect();

    let part: Vec<(Datum, Vec<Datum>)> = (0..n_part)
        .map(|p| {
            let name = format!(
                "{} {} {}",
                COLORS[rng.gen_range(0..COLORS.len())],
                COLORS[rng.gen_range(0..COLORS.len())],
                COLORS[rng.gen_range(0..COLORS.len())]
            );
            (
                Datum::Int(p),
                vec![Datum::Text(name), Datum::Text(format!("TYPE#{}", p % 25))],
            )
        })
        .collect();

    let partsupp: Vec<(Datum, Vec<Datum>)> = (0..n_part)
        .flat_map(|p| {
            (0..4).map(move |j| {
                (
                    Datum::List(vec![
                        Datum::Int(p),
                        Datum::Int(supplier_of_part(p, j, n_supp)),
                    ]),
                    vec![Datum::Float(100.0 + ((p * 7 + j * 13) % 900) as f64 / 10.0)],
                )
            })
        })
        .collect();

    let customer: Vec<(Datum, Vec<Datum>)> = (0..n_cust)
        .map(|c| {
            (
                Datum::Int(c),
                vec![
                    Datum::Text(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_owned()),
                    Datum::Int(c % NATIONS as i64),
                ],
            )
        })
        .collect();

    let nation: Vec<(Datum, Vec<Datum>)> = (0..NATIONS as i64)
        .map(|n| (Datum::Int(n), vec![Datum::Text(format!("NATION{n:02}"))]))
        .collect();

    let mut orders = Vec::with_capacity(n_orders as usize);
    let mut lineitem_base = Vec::new();
    for o in 0..n_orders {
        let orderdate = rng.gen_range(0..2400i64);
        orders.push((
            Datum::Int(o),
            vec![
                Datum::Int(rng.gen_range(0..n_cust)),
                Datum::Int(orderdate),
                Datum::Int(rng.gen_range(0..3i64)),
            ],
        ));
        // Lineitems of one order are generated (and therefore stored)
        // consecutively, as in dbgen output.
        for _ in 0..rng.gen_range(1..=7usize) {
            let partkey = rng.gen_range(0..n_part);
            let suppkey = supplier_of_part(partkey, rng.gen_range(0..4i64), n_supp);
            lineitem_base.push(Datum::List(vec![
                Datum::Int(o),
                Datum::Int(partkey),
                Datum::Int(suppkey),
                Datum::Float(rng.gen_range(1..50i64) as f64),
                Datum::Float(rng.gen_range(1000..100_000i64) as f64 / 100.0),
                Datum::Float(rng.gen_range(0..10i64) as f64 / 100.0),
                Datum::Int(orderdate + rng.gen_range(1..=120i64)),
            ]));
        }
    }

    let dup = config.dup_lineitem.max(1);
    let mut lineitem = Vec::with_capacity(lineitem_base.len() * dup);
    let mut id = 0i64;
    for _ in 0..dup {
        for v in &lineitem_base {
            lineitem.push(Record::new(id, v.clone()));
            id += 1;
        }
    }

    TpchData {
        lineitem,
        orders,
        customer,
        supplier,
        part,
        partsupp,
        nation,
    }
}

fn kv(name: &str, cluster: &Cluster, pairs: Vec<(Datum, Vec<Datum>)>) -> Arc<KvStore> {
    Arc::new(KvStore::build(
        name,
        cluster,
        KvStoreConfig::default(),
        pairs,
    ))
}

fn field(value: &Datum, idx: usize) -> Datum {
    value
        .as_list()
        .map(|l| l[idx].clone())
        .unwrap_or(Datum::Null)
}

/// Builds the Q3 job over a loaded DFS (`tpch.lineitem` present).
pub fn q3_job(cluster: &Cluster, data: &TpchData) -> IndexJobConf {
    let orders_idx = kv("orders", cluster, data.orders.clone());
    let customer_idx = kv("customer", cluster, data.customer.clone());

    // I1: LineItem ⋈ Orders on l_orderkey; filters o_orderdate < cutoff
    // and l_shipdate > cutoff; projects to what Q3 still needs.
    let orders_op = operator_fn(
        "orders",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, field(&rec.value, 0));
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let Some(l) = rec.value.as_list() else { return };
            let o = values.first(0);
            if o.is_empty() {
                return;
            }
            let orderdate = o[1].as_int().unwrap_or(i64::MAX);
            let shipdate = l[6].as_int().unwrap_or(0);
            if orderdate >= Q3_DATE_CUTOFF || shipdate <= Q3_DATE_CUTOFF {
                return;
            }
            let revenue = l[4].as_float().unwrap_or(0.0) * (1.0 - l[5].as_float().unwrap_or(0.0));
            out.collect(Record {
                key: rec.key,
                value: Datum::List(vec![
                    l[0].clone(),          // orderkey
                    Datum::Float(revenue), // revenue
                    o[0].clone(),          // custkey
                    o[1].clone(),          // orderdate
                    o[2].clone(),          // shippriority
                ]),
            });
        },
    );

    // I2: ⋈ Customer on custkey; filters the market segment.
    let customer_op = operator_fn(
        "customer",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, field(&rec.value, 2));
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let c = values.first(0);
            if c.is_empty() || c[0].as_text() != Some(Q3_SEGMENT) {
                return;
            }
            let Some(v) = rec.value.as_list() else { return };
            out.collect(Record {
                key: rec.key,
                value: Datum::List(vec![v[0].clone(), v[1].clone(), v[3].clone(), v[4].clone()]),
            });
        },
    );

    IndexJobConf::new("tpch-q3", "tpch.lineitem", "tpch.q3")
        .add_head_index_operator(BoundOperator::new(orders_op).add_index(orders_idx))
        .add_head_index_operator(BoundOperator::new(customer_op).add_index(customer_idx))
        .set_mapper(mapper_fn(|rec, out, _| {
            let Some(v) = rec.value.as_list() else { return };
            out.collect(Record {
                key: Datum::List(vec![v[0].clone(), v[2].clone(), v[3].clone()]),
                value: v[1].clone(),
            });
        }))
        .set_reducer(
            reducer_fn(|key, values, out, _| {
                let total: f64 = values.iter().filter_map(Datum::as_float).sum();
                out.collect(Record::new(key, total));
            }),
            24,
        )
}

/// Builds the Q9 job over a loaded DFS (`tpch.lineitem` present).
pub fn q9_job(cluster: &Cluster, data: &TpchData) -> IndexJobConf {
    let supplier_idx = kv("supplier", cluster, data.supplier.clone());
    let part_idx = kv("part", cluster, data.part.clone());
    let partsupp_idx = kv("partsupp", cluster, data.partsupp.clone());
    let orders_idx = kv("orders9", cluster, data.orders.clone());
    let nation_idx = kv("nation", cluster, data.nation.clone());

    // I1: ⋈ Supplier on l_suppkey → value [ok, pk, sk, qty, price, disc, snation].
    let supplier_op = operator_fn(
        "supplier",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, field(&rec.value, 2));
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let s = values.first(0);
            if s.is_empty() {
                return;
            }
            let Some(l) = rec.value.as_list() else { return };
            out.collect(Record {
                key: rec.key,
                value: Datum::List(vec![
                    l[0].clone(),
                    l[1].clone(),
                    l[2].clone(),
                    l[3].clone(),
                    l[4].clone(),
                    l[5].clone(),
                    s[1].clone(), // s_nationkey
                ]),
            });
        },
    );

    // I2: ⋈ Part on l_partkey; keeps only parts whose name contains the
    // color token (Q9's `p_name like '%green%'`).
    let part_op = operator_fn(
        "part",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, field(&rec.value, 1));
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let p = values.first(0);
            if p.is_empty() || !p[0].as_text().is_some_and(|n| n.contains(Q9_COLOR)) {
                return;
            }
            out.collect(rec);
        },
    );

    // I3: ⋈ PartSupp on (partkey, suppkey) → append supplycost.
    let partsupp_op = operator_fn(
        "partsupp",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            if let Some(v) = rec.value.as_list() {
                keys.put(0, Datum::List(vec![v[1].clone(), v[2].clone()]));
            } else {
                keys.put(0, Datum::Null);
            }
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let ps = values.first(0);
            if ps.is_empty() {
                return;
            }
            let Some(mut v) = rec.value.into_list() else {
                return;
            };
            v.push(ps[0].clone()); // supplycost at [7]
            out.collect(Record {
                key: rec.key,
                value: Datum::List(v),
            });
        },
    );

    // I4: ⋈ Orders on l_orderkey → append o_year at [8].
    let orders_op = operator_fn(
        "orders9",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, field(&rec.value, 0));
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let o = values.first(0);
            if o.is_empty() {
                return;
            }
            let Some(mut v) = rec.value.into_list() else {
                return;
            };
            v.push(Datum::Int(o[1].as_int().unwrap_or(0) / 365));
            out.collect(Record {
                key: rec.key,
                value: Datum::List(v),
            });
        },
    );

    // I5: ⋈ Nation on s_nationkey → append nation name at [9].
    let nation_op = operator_fn(
        "nation",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, field(&rec.value, 6));
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let n = values.first(0);
            if n.is_empty() {
                return;
            }
            let Some(mut v) = rec.value.into_list() else {
                return;
            };
            v.push(n[0].clone());
            out.collect(Record {
                key: rec.key,
                value: Datum::List(v),
            });
        },
    );

    IndexJobConf::new("tpch-q9", "tpch.lineitem", "tpch.q9")
        .add_head_index_operator(BoundOperator::new(supplier_op).add_index(supplier_idx))
        .add_head_index_operator(BoundOperator::new(part_op).add_index(part_idx))
        .add_head_index_operator(BoundOperator::new(partsupp_op).add_index(partsupp_idx))
        .add_head_index_operator(BoundOperator::new(orders_op).add_index(orders_idx))
        .add_head_index_operator(BoundOperator::new(nation_op).add_index(nation_idx))
        .set_mapper(mapper_fn(|rec, out, _| {
            let Some(v) = rec.value.as_list() else { return };
            let qty = v[3].as_float().unwrap_or(0.0);
            let price = v[4].as_float().unwrap_or(0.0);
            let disc = v[5].as_float().unwrap_or(0.0);
            let scost = v[7].as_float().unwrap_or(0.0);
            out.collect(Record {
                key: Datum::List(vec![v[9].clone(), v[8].clone()]),
                value: Datum::Float(price * (1.0 - disc) - scost * qty),
            });
        }))
        .set_reducer(
            reducer_fn(|key, values, out, _| {
                let total: f64 = values.iter().filter_map(Datum::as_float).sum();
                out.collect(Record::new(key, total));
            }),
            24,
        )
}

fn base_scenario(config: &TpchConfig, q3: bool) -> Scenario {
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    let data = generate(config);
    dfs.write_file_with_chunks("tpch.lineitem", data.lineitem.clone(), config.chunks);
    let ijob = if q3 {
        q3_job(&cluster, &data)
    } else {
        q9_job(&cluster, &data)
    };
    // "For re-partitioning, we choose one of the indices with the most
    // benefits to apply re-partitioning (Orders in Q3, Supplier in Q9),
    // while using the lookup cache strategy for the rest."
    let mut repart_overrides = FxHashMap::default();
    repart_overrides.insert(
        if q3 { "orders" } else { "supplier" }.to_owned(),
        Strategy::Repartition,
    );
    Scenario {
        cluster,
        dfs,
        ijob,
        repart_overrides,
        idxloc_applicable: true,
        efind_config: EFindConfig::default(),
    }
}

/// The Q3 scenario (use `dup_lineitem = 10` for DUP10).
pub fn q3_scenario(config: &TpchConfig) -> Scenario {
    base_scenario(config, true)
}

/// The Q9 scenario (use `dup_lineitem = 10` for DUP10).
pub fn q9_scenario(config: &TpchConfig) -> Scenario {
    base_scenario(config, false)
}

/// Serial reference implementation of Q3 (test oracle).
pub fn q3_reference(data: &TpchData) -> FxHashMap<Datum, f64> {
    // efind-lint: allow(unordered-iter, keyed lookup side table built from an ordered Vec; never iterated)
    let orders: FxHashMap<&Datum, &Vec<Datum>> = data.orders.iter().map(|(k, v)| (k, v)).collect();
    let customers: FxHashMap<&Datum, &Vec<Datum>> =
        data.customer.iter().map(|(k, v)| (k, v)).collect();
    let mut out: FxHashMap<Datum, f64> = FxHashMap::default();
    for rec in &data.lineitem {
        let l = rec.value.as_list().unwrap();
        let Some(o) = orders.get(&l[0]) else { continue };
        if o[1].as_int().unwrap() >= Q3_DATE_CUTOFF || l[6].as_int().unwrap() <= Q3_DATE_CUTOFF {
            continue;
        }
        let Some(c) = customers.get(&o[0]) else {
            continue;
        };
        if c[0].as_text() != Some(Q3_SEGMENT) {
            continue;
        }
        let revenue = l[4].as_float().unwrap() * (1.0 - l[5].as_float().unwrap());
        let key = Datum::List(vec![l[0].clone(), o[1].clone(), o[2].clone()]);
        *out.entry(key).or_insert(0.0) += revenue;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_mode;
    use efind::Mode;

    fn tiny() -> TpchConfig {
        TpchConfig {
            scale: 0.002,
            dup_lineitem: 1,
            chunks: 20,
            seed: 42,
        }
    }

    #[test]
    fn generator_respects_scale_and_correlations() {
        let data = generate(&tiny());
        assert_eq!(data.nation.len(), 25);
        assert_eq!(data.supplier.len(), 3_000);
        assert!(data.lineitem.len() > data.orders.len());
        // Lineitems of one order are consecutive.
        let mut seen_orders = Vec::new();
        for rec in &data.lineitem {
            let ok = rec.value.as_list().unwrap()[0].as_int().unwrap();
            if seen_orders.last() != Some(&ok) {
                seen_orders.push(ok);
            }
        }
        let mut dedup = seen_orders.clone();
        dedup.dedup();
        assert_eq!(
            seen_orders.len(),
            dedup.len(),
            "each order's lineitems must be contiguous"
        );
        // Every (partkey, suppkey) pair exists in partsupp.
        let ps: std::collections::HashSet<&Datum> = data.partsupp.iter().map(|(k, _)| k).collect();
        for rec in data.lineitem.iter().take(100) {
            let l = rec.value.as_list().unwrap();
            let key = Datum::List(vec![l[1].clone(), l[2].clone()]);
            assert!(ps.contains(&key));
        }
    }

    #[test]
    fn dup10_multiplies_lineitem_only() {
        let one = generate(&tiny());
        let ten = generate(&TpchConfig {
            dup_lineitem: 10,
            ..tiny()
        });
        assert_eq!(ten.lineitem.len(), one.lineitem.len() * 10);
        assert_eq!(ten.orders.len(), one.orders.len());
    }

    #[test]
    fn q3_matches_reference_under_all_strategies() {
        let config = tiny();
        let reference = q3_reference(&generate(&config));
        assert!(!reference.is_empty(), "filter too selective at this scale");
        for strategy in [Strategy::Baseline, Strategy::Cache, Strategy::Repartition] {
            let mut s = q3_scenario(&config);
            run_mode(&mut s, "x", Mode::Uniform(strategy)).unwrap();
            let out = s.dfs.read_file("tpch.q3").unwrap();
            assert_eq!(out.len(), reference.len(), "{strategy:?}");
            for r in &out {
                let expect = reference.get(&r.key).copied().unwrap();
                let got = r.value.as_float().unwrap();
                assert!((got - expect).abs() < 1e-6, "{strategy:?}: {:?}", r.key);
            }
        }
    }

    #[test]
    fn q9_produces_nation_year_rollup() {
        let mut s = q9_scenario(&tiny());
        run_mode(&mut s, "x", Mode::Uniform(Strategy::Cache)).unwrap();
        let out = s.dfs.read_file("tpch.q9").unwrap();
        assert!(!out.is_empty());
        for r in &out {
            let key = r.key.as_list().unwrap();
            assert!(key[0].as_text().unwrap().starts_with("NATION"));
            assert!(key[1].as_int().is_some());
        }
    }

    #[test]
    fn q9_manual_repart_matches_cache_output() {
        let config = tiny();
        let mut s1 = q9_scenario(&config);
        run_mode(&mut s1, "x", Mode::Uniform(Strategy::Cache)).unwrap();
        let mut expected = s1.dfs.read_file("tpch.q9").unwrap();
        expected.sort();

        let mut s2 = q9_scenario(&config);
        let overrides = s2.repart_overrides.clone();
        run_mode(&mut s2, "x", Mode::Manual(overrides)).unwrap();
        let mut got = s2.dfs.read_file("tpch.q9").unwrap();
        got.sort();
        // Re-partitioning reorders the floating-point summation, so
        // totals agree only to rounding.
        assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            assert_eq!(g.key, e.key);
            let (gv, ev) = (g.value.as_float().unwrap(), e.value.as_float().unwrap());
            assert!(
                (gv - ev).abs() <= 1e-6 * ev.abs().max(1.0),
                "{:?}: {gv} vs {ev}",
                g.key
            );
        }
    }
}
