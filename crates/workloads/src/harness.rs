//! Experiment plumbing shared by the figure benches, examples, and tests.
//!
//! A [`Scenario`] bundles everything one experiment configuration needs:
//! the simulated cluster, a DFS pre-loaded with the input, the enhanced
//! job, and the experiment-specific strategy overrides (the paper forces
//! re-partitioning on "one of the indices with the most benefits" in the
//! multi-join experiments). [`run_standard`] executes the six
//! configurations of §5.1 and reports virtual seconds per configuration.

use efind::{EFindConfig, EFindRuntime, Mode, Strategy};
use efind_cluster::Cluster;
use efind_common::{FxHashMap, Result};
use efind_dfs::Dfs;

/// A fully built experiment configuration.
pub struct Scenario {
    /// The simulated cluster.
    pub cluster: Cluster,
    /// DFS pre-loaded with the main input (and anything else the job
    /// reads).
    pub dfs: Dfs,
    /// The EFind-enhanced job.
    pub ijob: efind::IndexJobConf,
    /// Per-operator strategy for the `Repart` configuration (operators
    /// not listed run the cache strategy, as in the paper's multi-join
    /// methodology). Empty = force re-partitioning everywhere.
    pub repart_overrides: FxHashMap<String, Strategy>,
    /// Whether the index locality configuration applies (at least one
    /// index exposes a partition scheme).
    pub idxloc_applicable: bool,
    /// Runtime configuration (cache size, thresholds…).
    pub efind_config: EFindConfig,
}

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Configuration label (`base`, `cache`, `repart`, `idxloc`,
    /// `optimized`, `dynamic`).
    pub label: String,
    /// Virtual seconds of the enhanced job (all constituent MapReduce
    /// jobs).
    pub secs: f64,
    /// Whether the adaptive runtime changed plans (dynamic only).
    pub replanned: bool,
}

/// Runs one mode on a scenario, returning virtual seconds.
pub fn run_mode(scenario: &mut Scenario, label: &str, mode: Mode) -> Result<Measurement> {
    let mut rt = EFindRuntime::with_config(
        &scenario.cluster,
        &mut scenario.dfs,
        scenario.efind_config.clone(),
    );
    if matches!(mode, Mode::Optimized) {
        // "Optimization with sufficient statistics": collect them the way
        // the paper does — from a previous execution of the job.
        rt.run(&scenario.ijob, Mode::Uniform(Strategy::Baseline))?;
    }
    let res = rt.run(&scenario.ijob, mode)?;
    Ok(Measurement {
        label: label.to_owned(),
        secs: res.total_time.as_secs_f64(),
        replanned: res.replanned,
    })
}

/// The standard configuration set of §5.1: `(label, mode)` pairs in the
/// order the figures report them.
pub fn standard_modes(scenario: &Scenario) -> Vec<(String, Mode)> {
    let mut modes = vec![
        ("base".to_owned(), Mode::Uniform(Strategy::Baseline)),
        ("cache".to_owned(), Mode::Uniform(Strategy::Cache)),
    ];
    let repart_mode = if scenario.repart_overrides.is_empty() {
        Mode::Uniform(Strategy::Repartition)
    } else {
        Mode::Manual(scenario.repart_overrides.clone())
    };
    modes.push(("repart".to_owned(), repart_mode));
    if scenario.idxloc_applicable {
        let idxloc_mode = if scenario.repart_overrides.is_empty() {
            Mode::Uniform(Strategy::IndexLocality)
        } else {
            let overrides: FxHashMap<String, Strategy> = scenario
                .repart_overrides
                .iter()
                .map(|(k, v)| {
                    let s = if *v == Strategy::Repartition {
                        Strategy::IndexLocality
                    } else {
                        *v
                    };
                    (k.clone(), s)
                })
                .collect();
            Mode::Manual(overrides)
        };
        modes.push(("idxloc".to_owned(), idxloc_mode));
    }
    modes.push(("optimized".to_owned(), Mode::Optimized));
    modes.push(("dynamic".to_owned(), Mode::Dynamic));
    modes
}

/// Runs all standard configurations on a scenario.
pub fn run_standard(scenario: &mut Scenario) -> Result<Vec<Measurement>> {
    let modes = standard_modes(scenario);
    let mut out = Vec::with_capacity(modes.len());
    for (label, mode) in modes {
        out.push(run_mode(scenario, &label, mode)?);
    }
    Ok(out)
}

/// Formats measurements as an aligned text table (one figure bar group).
pub fn format_table(title: &str, rows: &[Measurement]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let base = rows.iter().find(|m| m.label == "base").map(|m| m.secs);
    for m in rows {
        let speedup = match base {
            Some(b) if m.secs > 0.0 => format!("   ({:>5.2}x vs base)", b / m.secs),
            _ => String::new(),
        };
        let _ = writeln!(
            s,
            "  {:<10} {:>12}{speedup}{}",
            m.label,
            efind_common::fmtutil::human_secs(m.secs),
            if m.replanned { "  [replanned]" } else { "" }
        );
    }
    s
}

/// Finds a measurement by label.
pub fn secs_of(rows: &[Measurement], label: &str) -> f64 {
    rows.iter()
        .find(|m| m.label == label)
        .map(|m| m.secs)
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(label: &str, secs: f64) -> Measurement {
        Measurement {
            label: label.into(),
            secs,
            replanned: false,
        }
    }

    #[test]
    fn format_table_reports_speedups_vs_base() {
        let rows = vec![m("base", 2.0), m("cache", 1.0)];
        let s = format_table("title", &rows);
        assert!(s.contains("title"));
        assert!(s.contains("2.00x vs base"), "{s}");
    }

    #[test]
    fn format_table_omits_speedup_without_base() {
        let rows = vec![m("local", 0.001), m("remote", 0.002)];
        let s = format_table("t", &rows);
        assert!(!s.contains("vs base"), "{s}");
        assert!(s.contains("ms"), "{s}");
    }

    #[test]
    fn secs_of_finds_labels() {
        let rows = vec![m("base", 2.0), m("cache", 1.0)];
        assert_eq!(secs_of(&rows, "cache"), 1.0);
        assert!(secs_of(&rows, "missing").is_nan());
    }

    #[test]
    fn standard_modes_respect_applicability_and_overrides() {
        let scenario = crate::log::scenario(&crate::log::LogConfig {
            num_events: 100,
            chunks: 2,
            ..crate::log::LogConfig::default()
        });
        let modes = standard_modes(&scenario);
        let labels: Vec<&str> = modes.iter().map(|(l, _)| l.as_str()).collect();
        // LOG: single-host index → no idxloc row.
        assert_eq!(
            labels,
            vec!["base", "cache", "repart", "optimized", "dynamic"]
        );

        let scenario = crate::tpch::q3_scenario(&crate::tpch::TpchConfig {
            scale: 0.002,
            chunks: 4,
            ..crate::tpch::TpchConfig::default()
        });
        let modes = standard_modes(&scenario);
        let labels: Vec<&str> = modes.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"idxloc"));
        // The repart configuration uses the paper's per-operator override.
        let repart = modes.iter().find(|(l, _)| l == "repart").unwrap();
        assert!(matches!(repart.1, Mode::Manual(_)));
    }
}
