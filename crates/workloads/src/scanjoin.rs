//! A scan-based (reduce-side / repartition) join — the conventional
//! MapReduce join the paper's §1 contrasts index access against:
//! *"Present join implementations on MapReduce are mainly scan based.
//! Index-based joins … have been shown to out-perform scan-based joins
//! under high join selectivity"* (citing O'Neil and Graefe).
//!
//! The classic implementation: both tables are scanned, records are
//! tagged with their side, shuffled on the join key, and each reduce
//! group combines the one dimension row with its fact rows. This module
//! provides that join for LineItem ⋈ Orders so the selectivity-sweep
//! experiment (e14) can measure where index joins take over.

use std::sync::Arc;

use efind_cluster::{ChaosPlan, Cluster, CorruptionPlan, SimDuration, SimTime};
use efind_common::{Datum, Record, Result};
use efind_dfs::Dfs;
use efind_mapreduce::{mapper_fn, reducer_fn, JobConf, Runner};

use crate::tpch::TpchData;

/// Per-record processing cost used by BOTH joins: parsing, tagging, and
/// join bookkeeping per record — tens of microseconds in JVM-era Hadoop.
/// Shared so the comparison isolates the structural difference (shuffling
/// the dimension table vs probing its index).
const CPU_PER_RECORD: SimDuration = SimDuration::from_micros(20);

/// Runs the scan-based LineItem ⋈ Orders join: lineitems with
/// `shipdate < cutoff` joined to their order rows. Returns the virtual
/// duration and the number of joined rows.
pub fn run_scan_join(
    cluster: &Cluster,
    dfs: &mut Dfs,
    data: &TpchData,
    ship_cutoff: i64,
    chunks: usize,
) -> Result<(SimDuration, u64)> {
    run_scan_join_with(
        cluster,
        dfs,
        data,
        ship_cutoff,
        chunks,
        ChaosPlan::none(),
        CorruptionPlan::none(),
    )
}

/// [`run_scan_join`] with explicit chaos and corruption plans installed on
/// the runner. Quiet plans (including seeded-but-quiet ones) must be
/// bit-identical to [`run_scan_join`] — the quiet-profile bench and golden
/// tests pin exactly that.
#[allow(clippy::too_many_arguments)]
pub fn run_scan_join_with(
    cluster: &Cluster,
    dfs: &mut Dfs,
    data: &TpchData,
    ship_cutoff: i64,
    chunks: usize,
    chaos: ChaosPlan,
    corruption: CorruptionPlan,
) -> Result<(SimDuration, u64)> {
    // The combined tagged input both sides are scanned from — exactly how
    // a reduce-side join feeds one MapReduce job.
    let mut input: Vec<Record> = Vec::with_capacity(data.lineitem.len() + data.orders.len());
    for rec in &data.lineitem {
        input.push(Record::new(
            rec.key.clone(),
            Datum::List(vec![Datum::Text("L".into()), rec.value.clone()]),
        ));
    }
    for (orderkey, fields) in &data.orders {
        input.push(Record::new(
            orderkey.clone(),
            Datum::List(vec![Datum::Text("O".into()), Datum::List(fields.clone())]),
        ));
    }
    dfs.write_file_with_chunks("scanjoin.input", input, chunks);

    let conf = JobConf::new("scan-join", "scanjoin.input", "scanjoin.out")
        .with_cpu_per_record(CPU_PER_RECORD)
        .add_mapper(mapper_fn(move |rec, out, _| {
            let Some(parts) = rec.value.as_list() else {
                return;
            };
            let tag = parts[0].as_text().unwrap_or("");
            match tag {
                "L" => {
                    // Filter fact rows map-side; shuffle key = orderkey.
                    let Some(l) = parts[1].as_list() else { return };
                    if l[6].as_int().unwrap_or(i64::MAX) >= ship_cutoff {
                        return;
                    }
                    out.collect(Record {
                        key: l[0].clone(),
                        value: rec.value.clone(),
                    });
                }
                "O" => {
                    // Every dimension row must be shuffled — the scan
                    // join's fixed cost regardless of fact selectivity.
                    out.collect(Record {
                        key: rec.key.clone(),
                        value: rec.value.clone(),
                    });
                }
                _ => {}
            }
        }))
        .with_reducer(
            reducer_fn(|key, values, out, _| {
                let mut order: Option<&Datum> = None;
                let mut lineitems = 0i64;
                for v in &values {
                    match v.as_list().and_then(|p| p[0].as_text()) {
                        Some("O") => order = Some(v),
                        Some("L") => lineitems += 1,
                        _ => {}
                    }
                }
                if order.is_some() && lineitems > 0 {
                    out.collect(Record::new(key, lineitems));
                }
            }),
            24,
        );

    let res = Runner::with_chaos(cluster, dfs, chaos)
        .with_corruption(corruption)
        .run(&conf, SimTime::ZERO)?;
    let joined: u64 = dfs
        .read_file("scanjoin.out")?
        .iter()
        .map(|r| r.value.as_int().unwrap_or(0) as u64)
        .sum();
    Ok((res.stats.makespan(), joined))
}

/// The equivalent index-nested-loop join, expressed through EFind (as a
/// declarative `efind-ql` pipeline): filter lineitems, probe the Orders
/// index only for survivors.
pub fn run_index_join(
    cluster: &Cluster,
    dfs: &mut Dfs,
    data: &TpchData,
    ship_cutoff: i64,
    chunks: usize,
) -> Result<(SimDuration, u64)> {
    use efind_index::{KvStore, KvStoreConfig};
    use efind_ql::{col, lit, Agg, Query};

    dfs.write_file_with_chunks("idxjoin.input", data.lineitem.clone(), chunks);
    let orders = Arc::new(KvStore::build(
        "orders",
        cluster,
        KvStoreConfig::default(),
        data.orders.clone(),
    ));
    let mut job = Query::scan("idxjoin.input")
        .filter(col(6).lt(lit(ship_cutoff)))
        .index_join("orders", orders, col(0), [1])
        .group_by([])
        .aggregate([Agg::Count])
        .into_job("index-join", "idxjoin.out");
    job.cpu_per_record = CPU_PER_RECORD;

    let mut rt = efind::EFindRuntime::new(cluster, dfs);
    let res = rt.run(&job, efind::Mode::Uniform(efind::Strategy::Cache))?;
    let joined = rt
        .dfs
        .read_file("idxjoin.out")?
        .first()
        .and_then(|r| r.value.as_list().map(|l| l[0].as_int().unwrap_or(0) as u64))
        .unwrap_or(0);
    Ok((res.total_time, joined))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::{generate, TpchConfig};
    use efind_dfs::DfsConfig;

    fn setup() -> (Cluster, Dfs, TpchData) {
        let cluster = Cluster::edbt_testbed();
        let dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let data = generate(&TpchConfig {
            scale: 0.002,
            chunks: 30,
            seed: 3,
            ..TpchConfig::default()
        });
        (cluster, dfs, data)
    }

    fn reference_count(data: &TpchData, ship_cutoff: i64) -> u64 {
        let orders: std::collections::HashSet<&Datum> =
            data.orders.iter().map(|(k, _)| k).collect();
        data.lineitem
            .iter()
            .filter(|rec| {
                let l = rec.value.as_list().unwrap();
                l[6].as_int().unwrap() < ship_cutoff && orders.contains(&l[0])
            })
            .count() as u64
    }

    #[test]
    fn scan_and_index_joins_agree_with_reference() {
        let (cluster, mut dfs, data) = setup();
        for cutoff in [200i64, 1200, 5000] {
            let expect = reference_count(&data, cutoff);
            let (_, scan) = run_scan_join(&cluster, &mut dfs, &data, cutoff, 30).unwrap();
            let (_, index) = run_index_join(&cluster, &mut dfs, &data, cutoff, 30).unwrap();
            assert_eq!(scan, expect, "scan join at cutoff {cutoff}");
            assert_eq!(index, expect, "index join at cutoff {cutoff}");
        }
    }

    #[test]
    fn index_join_wins_at_high_selectivity() {
        // Very selective fact filter: the index join probes a handful of
        // keys while the scan join still scans and shuffles the whole
        // Orders table.
        let (cluster, mut dfs, data) = setup();
        let cutoff = 60; // ≈2.5% of shipdates
        let (scan_t, _) = run_scan_join(&cluster, &mut dfs, &data, cutoff, 30).unwrap();
        let (index_t, _) = run_index_join(&cluster, &mut dfs, &data, cutoff, 30).unwrap();
        assert!(
            index_t < scan_t,
            "index {index_t} should beat scan {scan_t} at high selectivity"
        );
    }

    #[test]
    fn scan_join_wins_when_everything_matches() {
        // No selectivity: probing the index once per fact row costs more
        // than one extra shuffle of the dimension table.
        let (cluster, mut dfs, data) = setup();
        let cutoff = i64::MAX;
        let (scan_t, scan_n) = run_scan_join(&cluster, &mut dfs, &data, cutoff, 30).unwrap();
        let (index_t, index_n) = run_index_join(&cluster, &mut dfs, &data, cutoff, 30).unwrap();
        assert_eq!(scan_n, index_n);
        assert!(
            scan_t < index_t,
            "scan {scan_t} should beat index {index_t} at full selectivity"
        );
    }
}
