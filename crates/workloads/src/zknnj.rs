//! H-zkNNJ — the hand-tuned kNN-join comparator (§5.4, Fig. 13).
//!
//! A from-scratch implementation of Zhang, Li, Jestes, *Efficient parallel
//! kNN joins for large data in MapReduce*, EDBT 2012, the baseline the
//! paper compares EFind against with α = 2 and ε = 0.003:
//!
//! 1. α randomly shifted copies of both data sets are mapped onto a
//!    z-order (Morton) curve;
//! 2. sampled quantiles of B's z-values define range partitions;
//! 3. a MapReduce job routes A to its partition and B to its partition
//!    *and both neighbors* (covering boundary effects), then each
//!    partition finds every A point's k best candidates among the 2k
//!    z-nearest B points;
//! 4. a second job merges candidates across shifts per A point and keeps
//!    the k closest — an ε-approximate kNN join.
//!
//! Everything runs as plain MapReduce jobs on the same simulated cluster
//! as the EFind version, so Fig. 13's comparison is apples-to-apples.

use std::sync::Arc;

use efind_cluster::{Cluster, SimDuration, SimTime};
use efind_common::{Datum, Record, Result};
use efind_dfs::Dfs;
use efind_index::rtree::{dist2, Point};
use efind_mapreduce::{reducer_fn, Collector, JobConf, Mapper, Runner, TaskCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::osm::bbox;

/// H-zkNNJ configuration.
#[derive(Clone, Debug)]
pub struct ZknnjConfig {
    /// Shifted copies (the paper sets α = 2).
    pub alpha: usize,
    /// Z-range partitions per shift.
    pub partitions: usize,
    /// Neighbors per query.
    pub k: usize,
    /// Sample size for quantile estimation.
    pub sample_size: usize,
    /// Input chunks for the combined file.
    pub chunks: usize,
    /// RNG seed (shift vectors, sampling).
    pub seed: u64,
}

impl Default for ZknnjConfig {
    fn default() -> Self {
        ZknnjConfig {
            alpha: 2,
            partitions: 32,
            k: 10,
            sample_size: 2048,
            chunks: 200,
            seed: 0x2C44,
        }
    }
}

const QUANT_BITS: u32 = 20;

/// Interleaves the bits of the quantized coordinates (Morton code).
fn z_value(p: Point, shift: Point, extent: (Point, Point)) -> u64 {
    let (lo, hi) = extent;
    let qx = quantize(p[0] + shift[0], lo[0], hi[0]);
    let qy = quantize(p[1] + shift[1], lo[1], hi[1]);
    interleave(qx) | (interleave(qy) << 1)
}

fn quantize(v: f64, lo: f64, hi: f64) -> u32 {
    let t = ((v - lo) / (hi - lo).max(1e-12)).clamp(0.0, 1.0);
    (t * ((1u64 << QUANT_BITS) - 1) as f64) as u32
}

fn interleave(mut v: u32) -> u64 {
    let mut x = v as u64 & ((1 << QUANT_BITS) - 1);
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    v = 0;
    let _ = v;
    x
}

struct Shifts {
    vectors: Vec<Point>,
    extent: (Point, Point),
    /// Per-shift ascending z boundaries (len = partitions - 1).
    boundaries: Vec<Vec<u64>>,
}

fn plan_shifts(config: &ZknnjConfig, b: &[(Point, u64)]) -> Shifts {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let bb = bbox();
    let span = [bb.max[0] - bb.min[0], bb.max[1] - bb.min[1]];
    // Shift vectors are drawn over the whole domain so the α z-curves are
    // decorrelated (small shifts leave the curves' high-order structure
    // aligned and the extra shifts contribute nothing).
    let mut vectors = vec![[0.0, 0.0]];
    for _ in 1..config.alpha.max(1) {
        vectors.push([rng.gen_range(0.0..span[0]), rng.gen_range(0.0..span[1])]);
    }
    // Extent covers every shifted coordinate.
    let max_shift = vectors
        .iter()
        .fold([0.0f64, 0.0f64], |m, v| [m[0].max(v[0]), m[1].max(v[1])]);
    let extent = (bb.min, [bb.max[0] + max_shift[0], bb.max[1] + max_shift[1]]);

    // Quantiles of B's z-values per shift, from a deterministic sample —
    // H-zkNNJ's sampling pre-step.
    let step = (b.len() / config.sample_size.max(1)).max(1);
    let boundaries = vectors
        .iter()
        .map(|&v| {
            let mut sample: Vec<u64> = b
                .iter()
                .step_by(step)
                .map(|(p, _)| z_value(*p, v, extent))
                .collect();
            sample.sort_unstable();
            (1..config.partitions)
                .map(|i| sample[i * sample.len() / config.partitions])
                .collect()
        })
        .collect();
    Shifts {
        vectors,
        extent,
        boundaries,
    }
}

fn partition_of(boundaries: &[u64], z: u64) -> usize {
    boundaries.partition_point(|&b| b <= z)
}

/// Routes records to `(shift, partition)` groups. B points additionally
/// go to both neighboring partitions to cover boundary truncation.
struct RouteMapper {
    shifts: Arc<Shifts>,
    partitions: usize,
}

impl Mapper for RouteMapper {
    fn map(&mut self, rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        let Some(fields) = rec.value.as_list() else {
            return ctx.fail("zknnj: malformed input record");
        };
        let tag = fields[0].clone();
        let is_b = tag.as_text() == Some("B");
        let p = [
            fields[1].as_float().unwrap_or(0.0),
            fields[2].as_float().unwrap_or(0.0),
        ];
        for (i, &shift) in self.shifts.vectors.iter().enumerate() {
            let z = z_value(p, shift, self.shifts.extent);
            let home = partition_of(&self.shifts.boundaries[i], z);
            let mut targets = vec![home];
            if is_b {
                if home > 0 {
                    targets.push(home - 1);
                }
                if home + 1 < self.partitions {
                    targets.push(home + 1);
                }
            }
            for t in targets {
                out.collect(Record {
                    key: Datum::List(vec![Datum::Int(i as i64), Datum::Int(t as i64)]),
                    value: Datum::List(vec![
                        tag.clone(),
                        rec.key.clone(),
                        Datum::Int(z as i64),
                        Datum::Float(p[0]),
                        Datum::Float(p[1]),
                    ]),
                });
            }
        }
    }
}

/// Per-partition candidate search: for each A point, the k best of its 2k
/// z-nearest B points.
fn partition_knn(values: Vec<Datum>, k: usize, out: &mut dyn Collector, ctx: &mut TaskCtx) {
    let mut a_points: Vec<(i64, u64, Point)> = Vec::new();
    let mut b_points: Vec<(u64, i64, Point)> = Vec::new(); // (z, id, point)
    for v in values {
        let Some(f) = v.as_list() else { continue };
        let id = f[1].as_int().unwrap_or(0);
        let z = f[2].as_int().unwrap_or(0) as u64;
        let p = [
            f[3].as_float().unwrap_or(0.0),
            f[4].as_float().unwrap_or(0.0),
        ];
        if f[0].as_text() == Some("A") {
            a_points.push((id, z, p));
        } else {
            b_points.push((z, id, p));
        }
    }
    b_points.sort_unstable_by_key(|e| e.0);
    for (a_id, z, ap) in a_points {
        let pos = b_points.partition_point(|e| e.0 < z);
        let lo = pos.saturating_sub(k);
        let hi = (pos + k).min(b_points.len());
        let mut cands: Vec<(f64, i64)> = b_points[lo..hi]
            .iter()
            .map(|(_, bid, bp)| (dist2(*bp, ap), *bid))
            .collect();
        // Model the per-candidate distance computations.
        ctx.charge(SimDuration::from_nanos(100 * cands.len() as u64));
        cands.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
        cands.truncate(k);
        let list: Vec<Datum> = cands
            .into_iter()
            .map(|(d2, bid)| Datum::List(vec![Datum::Int(bid), Datum::Float(d2)]))
            .collect();
        out.collect(Record {
            key: Datum::Int(a_id),
            value: Datum::List(list),
        });
    }
}

/// The H-zkNNJ result for one A point.
#[derive(Clone, Debug, PartialEq)]
pub struct KnnResult {
    /// A-point id.
    pub a_id: u64,
    /// `(b_id, squared distance)` ascending, up to k entries.
    pub neighbors: Vec<(u64, f64)>,
}

/// Runs the full H-zkNNJ pipeline and returns the virtual duration plus
/// the per-A results.
pub fn run(
    cluster: &Cluster,
    dfs: &mut Dfs,
    config: &ZknnjConfig,
    a: &[(Point, u64)],
    b: &[(Point, u64)],
) -> Result<(SimDuration, Vec<KnnResult>)> {
    let shifts = Arc::new(plan_shifts(config, b));

    // Combined tagged input.
    let mut input = Vec::with_capacity(a.len() + b.len());
    for (p, id) in a {
        input.push(Record::new(
            *id as i64,
            Datum::List(vec![
                Datum::Text("A".into()),
                Datum::Float(p[0]),
                Datum::Float(p[1]),
            ]),
        ));
    }
    for (p, id) in b {
        input.push(Record::new(
            *id as i64,
            Datum::List(vec![
                Datum::Text("B".into()),
                Datum::Float(p[0]),
                Datum::Float(p[1]),
            ]),
        ));
    }
    dfs.write_file_with_chunks("zknnj.input", input, config.chunks);

    // Job 1: route by (shift, z-partition); per-partition candidate kNN.
    let k = config.k;
    let partitions = config.partitions;
    let route_shifts = shifts.clone();
    let job1 = JobConf::new("zknnj-partition", "zknnj.input", "zknnj.cands");
    let mut job1 = job1;
    job1.map_chain.push(Arc::new(move || {
        Box::new(RouteMapper {
            shifts: route_shifts.clone(),
            partitions,
        })
    }));
    let job1 = job1.with_reducer(
        reducer_fn(move |_group, values, out, ctx| {
            partition_knn(values, k, out, ctx);
        }),
        config.partitions,
    );

    let mut runner = Runner::new(cluster, dfs);
    let res1 = runner.run(&job1, SimTime::ZERO)?;

    // Job 2: merge candidates across shifts per A point, keep k best.
    let job2 = JobConf::new("zknnj-merge", "zknnj.cands", "zknnj.result")
        .add_mapper(efind_mapreduce::identity_mapper())
        .with_reducer(
            reducer_fn(move |a_id, values, out, _ctx| {
                let mut best: Vec<(f64, i64)> = Vec::new();
                for list in values {
                    let Some(items) = list.as_list() else {
                        continue;
                    };
                    for item in items {
                        let Some(pair) = item.as_list() else { continue };
                        best.push((
                            pair[1].as_float().unwrap_or(f64::MAX),
                            pair[0].as_int().unwrap_or(0),
                        ));
                    }
                }
                best.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                best.dedup_by_key(|e| e.1);
                best.sort_by(|x, y| x.0.total_cmp(&y.0).then(x.1.cmp(&y.1)));
                best.truncate(k);
                let list: Vec<Datum> = best
                    .into_iter()
                    .map(|(d2, bid)| Datum::List(vec![Datum::Int(bid), Datum::Float(d2)]))
                    .collect();
                out.collect(Record {
                    key: a_id,
                    value: Datum::List(list),
                });
            }),
            24,
        );
    let mut runner = Runner::new(cluster, dfs);
    let res2 = runner.run(&job2, res1.stats.finished)?;
    let total = res2.stats.finished.since(SimTime::ZERO);

    let results = dfs
        .read_file("zknnj.result")?
        .into_iter()
        .map(|rec| KnnResult {
            a_id: rec.key.as_int().unwrap_or(0) as u64,
            neighbors: rec
                .value
                .as_list()
                .map(|items| {
                    items
                        .iter()
                        .filter_map(|i| {
                            let pair = i.as_list()?;
                            Some((pair[0].as_int()? as u64, pair[1].as_float()?))
                        })
                        .collect()
                })
                .unwrap_or_default(),
        })
        .collect();
    Ok((total, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use efind_dfs::DfsConfig;

    type Pts = Vec<(Point, u64)>;

    fn setup() -> (Cluster, Dfs, Pts, Pts) {
        let cluster = Cluster::edbt_testbed();
        let dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let (a, b) = crate::osm::generate_ab(&crate::osm::OsmConfig {
            num_a: 600,
            num_b: 900,
            clusters: 12,
            seed: 21,
            ..crate::osm::OsmConfig::default()
        });
        (cluster, dfs, a, b)
    }

    fn brute(b: &[(Point, u64)], q: Point, k: usize) -> Vec<(u64, f64)> {
        let mut all: Vec<(u64, f64)> = b.iter().map(|(p, id)| (*id, dist2(*p, q))).collect();
        all.sort_by(|x, y| x.1.total_cmp(&y.1).then(x.0.cmp(&y.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn z_values_preserve_locality() {
        let extent = ([0.0, 0.0], [40.0, 20.0]);
        let z1 = z_value([5.0, 5.0], [0.0, 0.0], extent);
        let z2 = z_value([5.001, 5.001], [0.0, 0.0], extent);
        let z3 = z_value([35.0, 15.0], [0.0, 0.0], extent);
        assert!(z1.abs_diff(z2) < z1.abs_diff(z3));
    }

    #[test]
    fn interleave_is_monotone_in_each_dim() {
        assert!(interleave(1) < interleave(2));
        assert_eq!(interleave(0), 0);
        assert_eq!(interleave(0b11), 0b0101);
    }

    #[test]
    fn pipeline_returns_one_result_per_a_point() {
        let (cluster, mut dfs, a, b) = setup();
        let (dur, results) = run(
            &cluster,
            &mut dfs,
            &ZknnjConfig {
                chunks: 20,
                ..Default::default()
            },
            &a,
            &b,
        )
        .unwrap();
        assert!(dur > SimDuration::ZERO);
        assert_eq!(results.len(), a.len());
        for r in &results {
            assert_eq!(r.neighbors.len(), 10);
            for w in r.neighbors.windows(2) {
                assert!(w[0].1 <= w[1].1);
            }
        }
    }

    #[test]
    fn approximation_quality_is_high() {
        let (cluster, mut dfs, a, b) = setup();
        let (_, results) = run(
            &cluster,
            &mut dfs,
            &ZknnjConfig {
                chunks: 20,
                ..Default::default()
            },
            &a,
            &b,
        )
        .unwrap();
        let mut recall_hits = 0usize;
        let mut recall_total = 0usize;
        let mut ratio_sum = 0.0;
        let mut ratio_n = 0usize;
        for r in results.iter().step_by(7) {
            let q = a.iter().find(|(_, id)| *id == r.a_id).unwrap().0;
            let exact = brute(&b, q, 10);
            let exact_ids: std::collections::HashSet<u64> =
                exact.iter().map(|(id, _)| *id).collect();
            recall_total += exact.len();
            recall_hits += r
                .neighbors
                .iter()
                .filter(|(id, _)| exact_ids.contains(id))
                .count();
            // k-th distance ratio (approximation factor).
            let exact_kth = exact.last().unwrap().1.sqrt().max(1e-12);
            let got_kth = r.neighbors.last().unwrap().1.sqrt();
            ratio_sum += got_kth / exact_kth;
            ratio_n += 1;
        }
        let recall = recall_hits as f64 / recall_total as f64;
        let ratio = ratio_sum / ratio_n as f64;
        assert!(recall > 0.8, "recall {recall}");
        assert!(ratio < 1.25, "distance ratio {ratio}");
    }
}
