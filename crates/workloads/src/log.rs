//! The LOG workload (§5.1, Fig. 11(a)).
//!
//! A synthetic stand-in for the paper's real web-log trace: *"An event
//! record consists of: event ID, timestamp, source IP, visited URL … The
//! application computes the top-k frequently visited URLs in each
//! geographical region. It uses a cloud service to look up the
//! geographical region for an IP address."*
//!
//! The paper attributes the cache and re-partitioning wins to the trace's
//! redundancy structure: *"an IP often visits multiple URLs in a short
//! period of time. The visits are often served by two or more web servers,
//! and recorded in two or more log files."* The generator reproduces both:
//! visits come in per-IP bursts (local redundancy within a log file), and
//! each burst is striped across several server streams (cross-machine
//! redundancy across files).

use std::sync::Arc;

use efind::{operator_fn, BoundOperator, EFindConfig, IndexJobConf};
use efind_cluster::{Cluster, SimDuration};
use efind_common::{fx_hash_bytes, Datum, FxHashMap, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_index::RemoteService;
use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::Scenario;

/// LOG experiment configuration.
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Total events (paper: 15 M; scaled default 60 k).
    pub num_events: usize,
    /// Distinct source IPs.
    pub num_ips: usize,
    /// Distinct URLs.
    pub num_urls: usize,
    /// Visits per IP burst.
    pub burst_len: usize,
    /// Server streams a burst is striped over (log files).
    pub server_streams: usize,
    /// Geographical regions the service maps IPs onto.
    pub num_regions: usize,
    /// Extra per-lookup delay added to the 0.8 ms base (the Fig. 11(a)
    /// sweep: 0–5 ms).
    pub extra_delay: SimDuration,
    /// Top-k URLs reported per region.
    pub top_k: usize,
    /// Input chunks (map tasks); > total map slots enables multi-wave
    /// adaptive optimization.
    pub chunks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            num_events: 60_000,
            num_ips: 2_000,
            num_urls: 500,
            burst_len: 9,
            server_streams: 3,
            num_regions: 50,
            extra_delay: SimDuration::ZERO,
            top_k: 10,
            chunks: 240,
            seed: 0x106,
        }
    }
}

/// Generates the event log: `key = event id`,
/// `value = [ip, url, timestamp]`.
pub fn generate(config: &LogConfig) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut streams: Vec<Vec<(String, String, i64)>> =
        vec![Vec::new(); config.server_streams.max(1)];
    let mut ts = 0i64;
    let mut produced = 0usize;
    while produced < config.num_events {
        let ip = format!(
            "10.{}.{}.{}",
            rng.gen_range(0..250),
            rng.gen_range(0..250),
            rng.gen_range(0..config.num_ips) % 250
        );
        let burst = config.burst_len.min(config.num_events - produced).max(1);
        let n_streams = streams.len();
        for v in 0..burst {
            let url = format!("/page/{}", rng.gen_range(0..config.num_urls));
            streams[v % n_streams].push((ip.clone(), url, ts));
            ts += 1;
            produced += 1;
        }
    }
    let mut records = Vec::with_capacity(config.num_events);
    let mut id = 0i64;
    for stream in streams {
        for (ip, url, ts) in stream {
            records.push(Record::new(
                id,
                Datum::List(vec![Datum::Text(ip), Datum::Text(url), Datum::Int(ts)]),
            ));
            id += 1;
        }
    }
    records
}

/// The geo-IP cloud service: a single-host remote index mapping an IP
/// string deterministically onto a region.
pub fn geo_service(config: &LogConfig) -> RemoteService {
    let regions = config.num_regions.max(1) as u64;
    RemoteService::new(
        "geoip",
        RemoteService::BASE_DELAY + config.extra_delay,
        move |key| match key.as_text() {
            Some(ip) => vec![Datum::Text(format!(
                "region{}",
                fx_hash_bytes(ip.as_bytes()) % regions
            ))],
            None => Vec::new(),
        },
    )
}

/// Builds the enhanced job: head geo-IP operator, identity Map, top-k
/// Reduce per region.
pub fn build_job(config: &LogConfig, service: Arc<RemoteService>) -> IndexJobConf {
    let top_k = config.top_k;
    let geo_op = operator_fn(
        "geoip",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            if let Some(fields) = rec.value.as_list() {
                keys.put(0, fields[0].clone());
                // Projection: only the URL is needed downstream.
                rec.value = fields[1].clone();
            }
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            if let Some(region) = values.first(0).first() {
                out.collect(Record {
                    key: region.clone(),
                    value: rec.value,
                });
            }
        },
    );
    IndexJobConf::new("log-topk", "log.events", "log.topk")
        .add_head_index_operator(BoundOperator::new(geo_op).add_index(service))
        .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
        .set_reducer(
            reducer_fn(move |region, urls, out, _| {
                let mut counts: FxHashMap<&Datum, usize> = FxHashMap::default();
                for url in &urls {
                    *counts.entry(url).or_insert(0) += 1;
                }
                // efind-lint: allow(unordered-iter, ranked is re-sorted below with a total-order tiebreak)
                let mut ranked: Vec<(&Datum, usize)> = counts.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                let top: Vec<Datum> = ranked
                    .into_iter()
                    .take(top_k)
                    .flat_map(|(url, n)| [url.clone(), Datum::Int(n as i64)])
                    .collect();
                out.collect(Record {
                    key: region,
                    value: Datum::List(top),
                });
            }),
            24,
        )
}

/// Builds the full scenario (cluster, loaded DFS, job).
pub fn scenario(config: &LogConfig) -> Scenario {
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("log.events", generate(config), config.chunks);
    let service = Arc::new(geo_service(config));
    let ijob = build_job(config, service);
    Scenario {
        cluster,
        dfs,
        ijob,
        // Single operator: force the strategy everywhere.
        repart_overrides: FxHashMap::default(),
        // The geo service is a single host — index locality does not apply
        // (the paper notes exactly this for LOG).
        idxloc_applicable: false,
        efind_config: EFindConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LogConfig {
        LogConfig {
            num_events: 3_000,
            num_ips: 100,
            num_urls: 50,
            chunks: 24,
            ..LogConfig::default()
        }
    }

    #[test]
    fn generator_produces_requested_volume() {
        let recs = generate(&small());
        assert_eq!(recs.len(), 3_000);
        // All records well-formed.
        for r in recs.iter().take(50) {
            let fields = r.value.as_list().unwrap();
            assert_eq!(fields.len(), 3);
            assert!(fields[0].as_text().unwrap().starts_with("10."));
        }
    }

    #[test]
    fn bursts_create_local_and_cross_stream_redundancy() {
        let config = small();
        let recs = generate(&config);
        // Count repeated IPs within a sliding window (local redundancy).
        let ips: Vec<&str> = recs
            .iter()
            .map(|r| r.value.as_list().unwrap()[0].as_text().unwrap())
            .collect();
        let mut local_repeats = 0;
        for w in ips.windows(8) {
            if w[1..].contains(&w[0]) {
                local_repeats += 1;
            }
        }
        assert!(
            local_repeats > recs.len() / 10,
            "expected bursty IPs, got {local_repeats} repeats"
        );
    }

    #[test]
    fn geo_service_is_deterministic() {
        use efind::IndexAccessor;
        let svc = geo_service(&small());
        let k = Datum::Text("10.1.2.3".into());
        assert_eq!(svc.lookup(&k), svc.lookup(&k));
        assert_eq!(svc.lookup(&k).len(), 1);
    }

    #[test]
    fn job_end_to_end_topk() {
        let mut s = scenario(&small());
        let mut rt = efind::EFindRuntime::new(&s.cluster, &mut s.dfs);
        rt.run(&s.ijob, efind::Mode::Uniform(efind::Strategy::Cache))
            .unwrap();
        let out = rt.dfs.read_file("log.topk").unwrap();
        assert!(!out.is_empty());
        for r in &out {
            assert!(r.key.as_text().unwrap().starts_with("region"));
            let top = r.value.as_list().unwrap();
            assert!(top.len() <= 2 * 10);
            // Counts are descending.
            let counts: Vec<i64> = top
                .iter()
                .skip(1)
                .step_by(2)
                .map(|d| d.as_int().unwrap())
                .collect();
            for w in counts.windows(2) {
                assert!(w[0] >= w[1]);
            }
        }
    }
}
