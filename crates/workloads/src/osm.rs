//! The OSM kNN-join workload (§5.1, §5.4, Fig. 13).
//!
//! *"The job computes knnj (k = 10) between two randomly selected sub-sets
//! (A and B) of records from the OSM data set. For the EFind based
//! implementation, we use A as the main input to MapReduce and build a
//! distributed index on B to support knn search."* The synthetic point
//! generator reproduces OSM's character: strongly clustered (city-like)
//! locations over a US-shaped aspect-ratio bounding box.

use std::sync::Arc;

use efind::{operator_fn, BoundOperator, EFindConfig, IndexJobConf};
use efind_cluster::Cluster;
use efind_common::{Datum, FxHashMap, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_index::rtree::{Point, Rect};
use efind_index::spatial::{SpatialGridConfig, SpatialGridIndex};
use efind_mapreduce::{mapper_fn, Collector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::Scenario;

/// OSM experiment configuration.
#[derive(Clone, Debug)]
pub struct OsmConfig {
    /// Points in set A (the main input).
    pub num_a: usize,
    /// Points in set B (the indexed set).
    pub num_b: usize,
    /// City-like clusters the points concentrate around.
    pub clusters: usize,
    /// Neighbors per query (the paper's k = 10).
    pub k: usize,
    /// Input chunks for A.
    pub chunks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OsmConfig {
    fn default() -> Self {
        OsmConfig {
            num_a: 20_000,
            num_b: 20_000,
            clusters: 64,
            k: 10,
            chunks: 200,
            seed: 0x05A,
        }
    }
}

/// The map's bounding box (continental-US-like aspect ratio, abstract
/// units).
pub fn bbox() -> Rect {
    Rect::new([0.0, 0.0], [40.0, 20.0])
}

/// Generates clustered points: cluster centers uniform over the box,
/// members offset by a small uniform jitter.
pub fn generate_points(n: usize, clusters: usize, seed: u64) -> Vec<(Point, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let bb = bbox();
    let centers: Vec<Point> = (0..clusters.max(1))
        .map(|_| {
            [
                rng.gen_range(bb.min[0]..bb.max[0]),
                rng.gen_range(bb.min[1]..bb.max[1]),
            ]
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[rng.gen_range(0..centers.len())];
            let p = [
                (c[0] + rng.gen_range(-0.8..0.8)).clamp(bb.min[0], bb.max[0]),
                (c[1] + rng.gen_range(-0.8..0.8)).clamp(bb.min[1], bb.max[1]),
            ];
            (p, i as u64)
        })
        .collect()
}

/// Converts points to MapReduce records: `key = id`, `value = [x, y]`.
pub fn points_to_records(points: &[(Point, u64)]) -> Vec<Record> {
    points
        .iter()
        .map(|(p, id)| {
            Record::new(
                *id as i64,
                Datum::List(vec![Datum::Float(p[0]), Datum::Float(p[1])]),
            )
        })
        .collect()
}

/// Builds the distributed spatial index on B (4×8 grid of R\*-trees,
/// replication 3 — the paper's setup).
pub fn build_index(
    config: &OsmConfig,
    cluster: &Cluster,
    b: Vec<(Point, u64)>,
) -> Arc<SpatialGridIndex> {
    Arc::new(SpatialGridIndex::build(
        "osm-b",
        cluster,
        SpatialGridConfig {
            k: config.k,
            ..SpatialGridConfig::default()
        },
        bbox(),
        b,
    ))
}

/// Builds the EFind kNN-join job: a head operator looks each A point up
/// in the B index; the result pairs flow to an identity group-by.
pub fn build_job(index: Arc<SpatialGridIndex>) -> IndexJobConf {
    let knn_op = operator_fn(
        "knn",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, rec.value.clone());
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            out.collect(Record {
                key: rec.key,
                value: Datum::List(values.first(0).to_vec()),
            });
        },
    );
    IndexJobConf::new("osm-knnj", "osm.a", "osm.knnj")
        .add_head_index_operator(BoundOperator::new(knn_op).add_index(index))
        .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
        .set_identity_reducer(24)
}

/// A set of identified points.
pub type PointSet = Vec<(Point, u64)>;

/// Draws A and B as the paper does: *"two randomly selected sub-sets (A
/// and B) of records from the OSM data set"* — disjoint halves of one
/// generated point pool, so they share the spatial clusters.
pub fn generate_ab(config: &OsmConfig) -> (PointSet, PointSet) {
    let pool = generate_points(config.num_a + config.num_b, config.clusters, config.seed);
    let (a, b): (Vec<_>, Vec<_>) = pool.into_iter().partition(|(_, id)| *id % 2 == 0);
    (
        a.into_iter().take(config.num_a).collect(),
        b.into_iter().take(config.num_b).collect(),
    )
}

/// Builds the full scenario. The same `generate_ab` split is used by the
/// H-zkNNJ comparator so both answer the identical join.
pub fn scenario(config: &OsmConfig) -> Scenario {
    // The spatial index is served over an RMI-style request/response
    // protocol: every remote kNN call pays a millisecond-class round
    // trip, which is what index locality eliminates (§5.4).
    let cluster = Cluster::builder()
        .network(efind_cluster::NetworkModel {
            bandwidth_bytes_per_sec: 125.0e6,
            latency: efind_cluster::SimDuration::from_micros(1_500),
        })
        .build();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    let (a, b) = generate_ab(config);
    dfs.write_file_with_chunks("osm.a", points_to_records(&a), config.chunks);
    let index = build_index(config, &cluster, b);
    let ijob = build_job(index);
    Scenario {
        cluster,
        dfs,
        ijob,
        repart_overrides: FxHashMap::default(),
        idxloc_applicable: true,
        efind_config: EFindConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_mode;
    use efind::{Mode, Strategy};
    use efind_index::rtree::dist2;
    use efind_index::spatial::decode_neighbor;

    fn tiny() -> OsmConfig {
        OsmConfig {
            num_a: 500,
            num_b: 800,
            clusters: 10,
            chunks: 12,
            ..OsmConfig::default()
        }
    }

    #[test]
    fn points_are_clustered() {
        let pts = generate_points(2000, 10, 1);
        // Mean nearest-neighbor distance should be far below the uniform
        // expectation (~0.5 * sqrt(area/n) ≈ 0.32 for 2000 points).
        let sample: Vec<Point> = pts.iter().take(200).map(|(p, _)| *p).collect();
        let mut total = 0.0;
        for (i, p) in sample.iter().enumerate() {
            let mut best = f64::MAX;
            for (j, q) in pts.iter().enumerate() {
                if i != j {
                    best = best.min(dist2(*p, q.0));
                }
            }
            total += best.sqrt();
        }
        let mean_nn = total / sample.len() as f64;
        assert!(mean_nn < 0.25, "mean NN distance {mean_nn}");
    }

    #[test]
    fn knnj_is_exact_vs_brute_force() {
        let config = tiny();
        let (a, b) = generate_ab(&config);
        let mut s = scenario(&config);
        run_mode(&mut s, "x", Mode::Uniform(Strategy::Baseline)).unwrap();
        let out = s.dfs.read_file("osm.knnj").unwrap();
        assert_eq!(out.len(), config.num_a);
        // Spot-check ten queries against brute force.
        for r in out.iter().step_by(50) {
            let a_id = r.key.as_int().unwrap() as u64;
            let q = a.iter().find(|(_, id)| *id == a_id).unwrap().0;
            let neighbors = r.value.as_list().unwrap();
            assert_eq!(neighbors.len(), config.k);
            let got_first = decode_neighbor(&neighbors[0]).unwrap();
            let mut dists: Vec<f64> = b.iter().map(|(p, _)| dist2(*p, q)).collect();
            dists.sort_by(f64::total_cmp);
            assert!((got_first.2 - dists[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn idxloc_matches_baseline_output() {
        let config = tiny();
        let mut s1 = scenario(&config);
        run_mode(&mut s1, "x", Mode::Uniform(Strategy::Baseline)).unwrap();
        let mut base = s1.dfs.read_file("osm.knnj").unwrap();
        base.sort();

        let mut s2 = scenario(&config);
        run_mode(&mut s2, "x", Mode::Uniform(Strategy::IndexLocality)).unwrap();
        let mut loc = s2.dfs.read_file("osm.knnj").unwrap();
        loc.sort();
        assert_eq!(base, loc);
    }
}
