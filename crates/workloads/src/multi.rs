//! A workload with **multiple independent indices in one operator**
//! (§2's fourth flexibility dimension and §3.5's planning problem).
//!
//! An ad-event enrichment job: every event carries a user id, an ad id,
//! and a site id; a single operator looks all three up — user profile,
//! ad metadata, site reputation — in three *independent* indices. The
//! planner (FullEnumerate / k-Repart) decides per index between the four
//! strategies and orders the accesses (Properties 1–4): the three
//! indices are deliberately given different redundancy and size profiles
//! so different strategies win.

use std::sync::Arc;

use efind::{operator_fn, BoundOperator, EFindConfig, IndexJobConf};
use efind_cluster::Cluster;
use efind_common::{Datum, FxHashMap, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_index::{KvStore, KvStoreConfig};
use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::Scenario;

/// Multi-index workload configuration.
#[derive(Clone, Debug)]
pub struct MultiConfig {
    /// Number of ad events.
    pub num_events: usize,
    /// Distinct users (high redundancy → re-partitioning candidate).
    pub num_users: usize,
    /// Distinct ads (bursty locality → cache candidate).
    pub num_ads: usize,
    /// Distinct sites (few, large metadata values).
    pub num_sites: usize,
    /// Site reputation payload bytes (sizes the third index's results).
    pub site_value_bytes: usize,
    /// Input chunks.
    pub chunks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            num_events: 30_000,
            num_users: 500,
            num_ads: 5_000,
            num_sites: 2_000,
            site_value_bytes: 2_000,
            chunks: 240,
            seed: 0x3317,
        }
    }
}

/// Generates ad events: `key = event id`, `value = [user, ad, site]`.
/// Ads arrive in bursts (task-local locality); users repeat globally but
/// not locally; sites are uniform.
pub fn generate(config: &MultiConfig) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut records = Vec::with_capacity(config.num_events);
    let mut current_ad = 0i64;
    for i in 0..config.num_events {
        if i % 6 == 0 {
            current_ad = rng.gen_range(0..config.num_ads) as i64;
        }
        records.push(Record::new(
            i as i64,
            Datum::List(vec![
                Datum::Int(((i as i64) * 7919) % config.num_users as i64),
                Datum::Int(current_ad),
                Datum::Int(rng.gen_range(0..config.num_sites) as i64),
            ]),
        ));
    }
    records
}

/// Builds the three indices with distinct profiles.
pub fn build_indices(
    config: &MultiConfig,
    cluster: &Cluster,
) -> (Arc<KvStore>, Arc<KvStore>, Arc<KvStore>) {
    let users = Arc::new(KvStore::build(
        "users",
        cluster,
        KvStoreConfig::default(),
        (0..config.num_users as i64).map(|u| {
            (
                Datum::Int(u),
                vec![Datum::Text(format!("segment{}", u % 16))],
            )
        }),
    ));
    let ads = Arc::new(KvStore::build(
        "ads",
        cluster,
        KvStoreConfig::default(),
        (0..config.num_ads as i64).map(|a| {
            (
                Datum::Int(a),
                vec![Datum::Text(format!("campaign{}", a % 64))],
            )
        }),
    ));
    let sites = Arc::new(KvStore::build(
        "sites",
        cluster,
        KvStoreConfig::default(),
        (0..config.num_sites as i64).map(|s| {
            (
                Datum::Int(s),
                vec![Datum::Bytes(vec![0x5E; config.site_value_bytes])],
            )
        }),
    ));
    (users, ads, sites)
}

/// Builds the job: one head operator with three independent indices, then
/// a count-by-(segment, campaign) reduce.
pub fn build_job(users: Arc<KvStore>, ads: Arc<KvStore>, sites: Arc<KvStore>) -> IndexJobConf {
    let enrich = operator_fn(
        "enrich3",
        3,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            if let Some(f) = rec.value.as_list() {
                keys.put(0, f[0].clone());
                keys.put(1, f[1].clone());
                keys.put(2, f[2].clone());
            }
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let segment = values.first(0).first().cloned().unwrap_or(Datum::Null);
            let campaign = values.first(1).first().cloned().unwrap_or(Datum::Null);
            let reputation_bytes = values
                .first(2)
                .first()
                .map(|v| v.size_bytes() as i64)
                .unwrap_or(0);
            out.collect(Record {
                key: Datum::List(vec![segment, campaign]),
                value: Datum::List(vec![rec.key, Datum::Int(reputation_bytes)]),
            });
        },
    );
    IndexJobConf::new("ad-enrich", "ads.events", "ads.enriched")
        .add_head_index_operator(
            BoundOperator::new(enrich)
                .add_index(users)
                .add_index(ads)
                .add_index(sites),
        )
        .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
        .set_reducer(
            reducer_fn(|key, values, out, _| {
                out.collect(Record::new(key, values.len() as i64));
            }),
            24,
        )
}

/// Builds the full scenario.
pub fn scenario(config: &MultiConfig) -> Scenario {
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("ads.events", generate(config), config.chunks);
    let (users, ads, sites) = build_indices(config, &cluster);
    let ijob = build_job(users, ads, sites);
    Scenario {
        cluster,
        dfs,
        ijob,
        repart_overrides: FxHashMap::default(),
        idxloc_applicable: true,
        efind_config: EFindConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_mode;
    use efind::{Mode, Strategy};

    fn tiny() -> MultiConfig {
        MultiConfig {
            num_events: 3_000,
            num_users: 100,
            num_ads: 400,
            num_sites: 200,
            site_value_bytes: 256,
            chunks: 24,
            ..MultiConfig::default()
        }
    }

    fn sorted_output(scenario: &Scenario) -> Vec<Record> {
        let mut out = scenario.dfs.read_file("ads.enriched").unwrap();
        out.sort();
        out
    }

    #[test]
    fn three_indices_fill_every_slot() {
        let mut s = scenario(&tiny());
        run_mode(&mut s, "x", Mode::Uniform(Strategy::Baseline)).unwrap();
        let out = sorted_output(&s);
        assert!(!out.is_empty());
        for r in &out {
            let key = r.key.as_list().unwrap();
            assert!(key[0].as_text().unwrap().starts_with("segment"));
            assert!(key[1].as_text().unwrap().starts_with("campaign"));
        }
        let total: i64 = out.iter().map(|r| r.value.as_int().unwrap()).sum();
        assert_eq!(total, 3_000);
    }

    #[test]
    fn uniform_strategies_agree_on_multi_index_operator() {
        let config = tiny();
        let mut reference = None;
        for strategy in [
            Strategy::Baseline,
            Strategy::Cache,
            Strategy::Repartition,
            Strategy::IndexLocality,
        ] {
            let mut s = scenario(&config);
            run_mode(&mut s, "x", Mode::Uniform(strategy)).unwrap();
            let out = sorted_output(&s);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "{strategy:?}"),
            }
        }
    }

    #[test]
    fn uniform_repartition_chains_three_shuffle_jobs() {
        // Three indices all re-partitioned = three shuffle jobs plus the
        // final reduce job; Property 2 makes each later shuffle carry the
        // earlier results.
        let mut s = scenario(&tiny());
        let m = run_mode(&mut s, "x", Mode::Uniform(Strategy::Repartition)).unwrap();
        assert!(m.secs > 0.0);
        // Intermediates cleaned up; output intact.
        assert!(!s.dfs.exists("ad-enrich.tmp0"));
        assert!(s.dfs.exists("ads.enriched"));
    }

    #[test]
    fn optimizer_differentiates_the_three_indices() {
        let mut s = scenario(&MultiConfig {
            num_events: 8_000,
            chunks: 60,
            ..tiny()
        });
        let mut rt =
            efind::EFindRuntime::with_config(&s.cluster, &mut s.dfs, s.efind_config.clone());
        rt.run(&s.ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
        // Statistics measured under the baseline plan must reflect the
        // designed profiles: users highly redundant, ads locally bursty,
        // sites carrying large values. (Note: statistics re-measured
        // *after* an earlier index's shuffle would differ — the shuffle
        // reorders the stream and destroys the ads' burst locality.)
        let stats = rt.catalog.get("enrich3").unwrap().clone();
        assert!(
            stats.indices[0].theta > 10.0,
            "users Θ={}",
            stats.indices[0].theta
        );
        assert!(
            stats.indices[1].miss_ratio < 0.5,
            "ads bursts should hit the cache shadow: R={}",
            stats.indices[1].miss_ratio
        );
        assert!(stats.indices[2].siv > 200.0, "sites carry large values");

        let res = rt.run(&s.ijob, Mode::Optimized).unwrap();
        let plan = &res.plans.iter().find(|(n, _)| n == "enrich3").unwrap().1;
        assert_eq!(plan.choices.len(), 3);
    }

    #[test]
    fn dynamic_handles_multi_index_operators() {
        let config = tiny();
        let mut s1 = scenario(&config);
        run_mode(&mut s1, "x", Mode::Uniform(Strategy::Baseline)).unwrap();
        let expected = sorted_output(&s1);

        let mut s2 = scenario(&config);
        run_mode(&mut s2, "x", Mode::Dynamic).unwrap();
        assert_eq!(sorted_output(&s2), expected);
    }
}
