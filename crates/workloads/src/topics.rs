//! The spatio-temporal tweet-topics pipeline of Example 2.1 (Figs. 4–5).
//!
//! Five steps, three indices, all operator placements exercised at once:
//!
//! 1. *head* `profile` — look each tweet's user up in a user-profile
//!    KV store to obtain the city;
//! 2. Map — extract keywords from the message and form the `(city, day)`
//!    key;
//! 3. *body* `topic` — call the knowledge-base service, a **dynamic**
//!    index that classifies the keywords into a topic (infinitely many
//!    valid keys, results computed not stored);
//! 4. Reduce — top-k topics per `(city, day)`;
//! 5. *tail* `events` — enrich each group with important events from an
//!    event database (a distributed B-tree).

use std::sync::Arc;

use efind::{operator_fn, BoundOperator, EFindConfig, IndexJobConf};
use efind_cluster::Cluster;
use efind_common::{Datum, FxHashMap, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_index::{DistBTree, KvStore, KvStoreConfig, TopicClassifier};
use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::Scenario;

/// Tweet workload configuration.
#[derive(Clone, Debug)]
pub struct TopicsConfig {
    /// Number of tweets.
    pub num_tweets: usize,
    /// Distinct user accounts.
    pub num_users: usize,
    /// Distinct cities users live in.
    pub num_cities: usize,
    /// Days the collection spans.
    pub days: usize,
    /// Message vocabulary size.
    pub vocab: usize,
    /// Top-k topics per (city, day).
    pub top_k: usize,
    /// Input chunks.
    pub chunks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TopicsConfig {
    fn default() -> Self {
        TopicsConfig {
            num_tweets: 20_000,
            num_users: 1_500,
            num_cities: 40,
            days: 30,
            vocab: 400,
            top_k: 3,
            chunks: 120,
            seed: 0x73E7,
        }
    }
}

const SECONDS_PER_DAY: i64 = 86_400;

/// Generates tweets: `key = tweet id`,
/// `value = [user, timestamp, message]`. Users tweet in sessions so the
/// user-profile lookups show the locality the paper's LOG analysis
/// describes.
pub fn generate_tweets(config: &TopicsConfig) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut records = Vec::with_capacity(config.num_tweets);
    let mut id = 0i64;
    while records.len() < config.num_tweets {
        let user = format!("user{}", rng.gen_range(0..config.num_users));
        let day = rng.gen_range(0..config.days) as i64;
        let session = rng.gen_range(1..=4usize);
        for s in 0..session.min(config.num_tweets - records.len()) {
            let words: Vec<String> = (0..rng.gen_range(3..7usize))
                .map(|_| format!("w{}", rng.gen_range(0..config.vocab)))
                .collect();
            records.push(Record::new(
                id,
                Datum::List(vec![
                    Datum::Text(user.clone()),
                    Datum::Int(day * SECONDS_PER_DAY + s as i64 * 60),
                    Datum::Text(words.join(" ")),
                ]),
            ));
            id += 1;
        }
    }
    records
}

/// Builds the user-profile index: `user → [city]`.
pub fn user_profiles(config: &TopicsConfig, cluster: &Cluster) -> Arc<KvStore> {
    Arc::new(KvStore::build(
        "user-profiles",
        cluster,
        KvStoreConfig::default(),
        (0..config.num_users).map(|u| {
            (
                Datum::Text(format!("user{u}")),
                vec![Datum::Text(format!("city{}", u % config.num_cities))],
            )
        }),
    ))
}

/// Builds the event database: `[city, day] → [event, …]`.
pub fn event_db(config: &TopicsConfig, cluster: &Cluster) -> Arc<DistBTree> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xE);
    let pairs = (0..config.num_cities).flat_map(|c| {
        (0..config.days).map(move |d| {
            (
                Datum::List(vec![Datum::Text(format!("city{c}")), Datum::Int(d as i64)]),
                vec![Datum::Text(format!("event-{c}-{d}"))],
            )
        })
    });
    let pairs: Vec<_> = pairs
        .filter(|_| rng.gen_bool(0.7)) // not every (city, day) has events
        .collect();
    Arc::new(DistBTree::build("events", cluster, 16, 3, pairs))
}

/// Builds the full Example 2.1 job.
pub fn build_job(
    config: &TopicsConfig,
    profiles: Arc<KvStore>,
    classifier: Arc<TopicClassifier>,
    events: Arc<DistBTree>,
) -> IndexJobConf {
    // I1 (head): user → city; keeps [city, ts, message].
    let profile_op = operator_fn(
        "profile",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            if let Some(f) = rec.value.as_list() {
                keys.put(0, f[0].clone());
            }
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let Some(city) = values.first(0).first() else {
                return;
            };
            let Some(f) = rec.value.as_list() else { return };
            out.collect(Record {
                key: rec.key,
                value: Datum::List(vec![city.clone(), f[1].clone(), f[2].clone()]),
            });
        },
    );

    // I2 (body): keywords → topic; applied to Map output
    // `key=[city,day], value=keywords`.
    let topic_op = operator_fn(
        "topic",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, rec.value.clone());
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let Some(topic) = values.first(0).first() else {
                return;
            };
            out.collect(Record {
                key: rec.key,
                value: topic.clone(),
            });
        },
    );

    // I3 (tail): (city, day) → events; appended to the top-k topics.
    let events_op = operator_fn(
        "events",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, rec.key.clone());
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let mut enriched = rec.value.into_list().unwrap_or_default();
            enriched.extend(values.first(0).iter().cloned());
            out.collect(Record {
                key: rec.key,
                value: Datum::List(enriched),
            });
        },
    );

    let top_k = config.top_k;
    IndexJobConf::new("tweet-topics", "tweets", "topics.out")
        .add_head_index_operator(BoundOperator::new(profile_op).add_index(profiles))
        .set_mapper(mapper_fn(|rec, out, _| {
            // Map: [city, ts, message] → key=[city, day], value=keywords.
            let Some(f) = rec.value.as_list() else { return };
            let day = f[1].as_int().unwrap_or(0) / SECONDS_PER_DAY;
            let message = f[2].as_text().unwrap_or("");
            // Keyword extraction: keep the three longest words.
            let mut words: Vec<&str> = message.split_whitespace().collect();
            words.sort_by_key(|w| std::cmp::Reverse(w.len()));
            words.truncate(3);
            words.sort_unstable();
            out.collect(Record {
                key: Datum::List(vec![f[0].clone(), Datum::Int(day)]),
                value: Datum::Text(words.join(" ")),
            });
        }))
        .add_body_index_operator(BoundOperator::new(topic_op).add_index(classifier))
        .set_reducer(
            reducer_fn(move |key, topics, out, _| {
                let mut counts: FxHashMap<&Datum, usize> = FxHashMap::default();
                for t in &topics {
                    *counts.entry(t).or_insert(0) += 1;
                }
                // efind-lint: allow(unordered-iter, ranked is re-sorted below with a total-order tiebreak)
                let mut ranked: Vec<(&Datum, usize)> = counts.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
                let top: Vec<Datum> = ranked
                    .into_iter()
                    .take(top_k)
                    .map(|(t, _)| t.clone())
                    .collect();
                out.collect(Record {
                    key,
                    value: Datum::List(top),
                });
            }),
            24,
        )
        .add_tail_index_operator(BoundOperator::new(events_op).add_index(events))
}

/// Builds the full scenario.
pub fn scenario(config: &TopicsConfig) -> Scenario {
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("tweets", generate_tweets(config), config.chunks);
    let profiles = user_profiles(config, &cluster);
    let classifier = Arc::new(TopicClassifier::news());
    let events = event_db(config, &cluster);
    let ijob = build_job(config, profiles, classifier, events);
    Scenario {
        cluster,
        dfs,
        ijob,
        repart_overrides: FxHashMap::default(),
        idxloc_applicable: true,
        efind_config: EFindConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_mode;
    use efind::{Mode, Strategy};

    fn tiny() -> TopicsConfig {
        TopicsConfig {
            num_tweets: 2_000,
            num_users: 150,
            num_cities: 10,
            days: 5,
            chunks: 16,
            ..TopicsConfig::default()
        }
    }

    #[test]
    fn pipeline_produces_enriched_topics() {
        let mut s = scenario(&tiny());
        run_mode(&mut s, "x", Mode::Uniform(Strategy::Cache)).unwrap();
        let out = s.dfs.read_file("topics.out").unwrap();
        assert!(!out.is_empty());
        let mut any_event = false;
        for r in &out {
            let key = r.key.as_list().unwrap();
            assert!(key[0].as_text().unwrap().starts_with("city"));
            let v = r.value.as_list().unwrap();
            assert!(!v.is_empty());
            if v.iter()
                .any(|d| d.as_text().is_some_and(|t| t.starts_with("event-")))
            {
                any_event = true;
            }
        }
        assert!(any_event, "tail operator should attach events");
    }

    #[test]
    fn strategies_agree_on_all_three_operators() {
        let config = tiny();
        let mut outputs = Vec::new();
        for strategy in [Strategy::Baseline, Strategy::Cache, Strategy::Repartition] {
            let mut s = scenario(&config);
            run_mode(&mut s, "x", Mode::Uniform(strategy)).unwrap();
            let mut out = s.dfs.read_file("topics.out").unwrap();
            out.sort();
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn dynamic_index_handles_unseen_keys() {
        // The classifier is computation-based: every keyword combination
        // is a valid key, even ones never generated before.
        let c = TopicClassifier::news();
        use efind::IndexAccessor;
        assert_eq!(
            c.lookup(&Datum::Text("entirely novel words".into())).len(),
            1
        );
    }
}
