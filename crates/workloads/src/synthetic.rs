//! The Synthetic workload (§5.1, Fig. 11(f)) and the lookup-latency
//! microbenchmark (Fig. 12).
//!
//! *"The synthetic data set contains 10 million records. Each record
//! consists of an integer key and a 1KB-sized value. The keys are
//! uniformly randomly generated from [0, 5,000,000]. We build an index
//! that maps each distinct key to an index value of size l, and run a job
//! to join the data set with the index. We vary the parameter l."*
//!
//! Uniform keys over half the record count give Θ ≈ 2 with no locality —
//! the regime where the cache is useless, re-partitioning halves the
//! lookups, and index locality starts winning once `l` outgrows the
//! shuffled record size.

use std::sync::Arc;

use efind::{operator_fn, BoundOperator, EFindConfig, IndexJobConf};
use efind_cluster::Cluster;
use efind_common::{Datum, FxHashMap, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_index::{KvStore, KvStoreConfig};
use efind_mapreduce::{mapper_fn, Collector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::Scenario;

/// Synthetic workload configuration.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Records in the main input (paper: 10 M; scaled default 40 k).
    pub num_records: usize,
    /// Join keys drawn uniformly from `[0, key_space)`; the paper uses
    /// `num_records / 2` so every key occurs twice on average.
    pub key_space: usize,
    /// Record payload bytes (paper: 1 KB).
    pub record_pad: usize,
    /// Index result size `l` — the Fig. 11(f) sweep parameter.
    pub index_value_size: usize,
    /// Key skew exponent: 0 = uniform (the paper's Fig. 11(f) setting);
    /// larger values draw keys as `⌊u^skew · key_space⌋`, concentrating
    /// mass on low ids (used by the cache-capacity sweep).
    pub key_skew: f64,
    /// Input chunks.
    pub chunks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            num_records: 40_000,
            key_space: 20_000,
            record_pad: 1024,
            index_value_size: 1024,
            key_skew: 0.0,
            chunks: 200,
            seed: 0x517,
        }
    }
}

/// Generates the main input: `key = record id`,
/// `value = [join_key, padding]`.
pub fn generate(config: &SyntheticConfig) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let space = config.key_space.max(1);
    (0..config.num_records)
        .map(|i| {
            let key = if config.key_skew > 0.0 {
                let u: f64 = rng.gen_range(0.0..1.0);
                ((u.powf(config.key_skew) * space as f64) as usize).min(space - 1)
            } else {
                rng.gen_range(0..space)
            };
            Record::new(
                i as i64,
                Datum::List(vec![
                    Datum::Int(key as i64),
                    Datum::Bytes(vec![0xAB; config.record_pad]),
                ]),
            )
        })
        .collect()
}

/// Builds the index: every key in the key space maps to `l` bytes.
///
/// The service-time profile is memory-resident-store-like (300 µs base,
/// ~1 GB/s scan), putting the 30 KB point in the regime the paper's
/// Fig. 12 shows: remote ≈ 2× local — which is what makes index locality
/// overtake re-partitioning for large results in Fig. 11(f).
pub fn build_index(config: &SyntheticConfig, cluster: &Cluster) -> Arc<KvStore> {
    Arc::new(KvStore::build(
        "synidx",
        cluster,
        KvStoreConfig {
            base_serve: efind_cluster::SimDuration::from_micros(300),
            serve_secs_per_byte: 1.0e-9,
            ..KvStoreConfig::default()
        },
        (0..config.key_space as i64).map(|k| {
            (
                Datum::Int(k),
                vec![Datum::Bytes(vec![0xCD; config.index_value_size])],
            )
        }),
    ))
}

/// Builds the join job: a head operator joins each record with the index;
/// the job is map-only (the paper's job is a pure join).
pub fn build_job(index: Arc<KvStore>) -> IndexJobConf {
    let join_op = operator_fn(
        "synjoin",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(
                0,
                rec.value
                    .as_list()
                    .map(|l| l[0].clone())
                    .unwrap_or(Datum::Null),
            );
            // The padding has served its purpose (input volume); project
            // it away so downstream sizes reflect the join result.
            if let Some(l) = rec.value.as_list() {
                rec.value = l[0].clone();
            }
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let joined = values.first(0).first().cloned().unwrap_or(Datum::Null);
            out.collect(Record {
                key: rec.key,
                value: Datum::List(vec![rec.value, Datum::Int(joined.size_bytes() as i64)]),
            });
        },
    );
    IndexJobConf::new("synthetic-join", "syn.input", "syn.joined")
        .add_head_index_operator(BoundOperator::new(join_op).add_index(index))
        .set_mapper(mapper_fn(|rec, out, _| out.collect(rec)))
}

/// Builds the full scenario.
pub fn scenario(config: &SyntheticConfig) -> Scenario {
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("syn.input", generate(config), config.chunks);
    let index = build_index(config, &cluster);
    let ijob = build_job(index);
    Scenario {
        cluster,
        dfs,
        ijob,
        repart_overrides: FxHashMap::default(),
        idxloc_applicable: true,
        efind_config: EFindConfig::default(),
    }
}

/// One row of Fig. 12: `(result_bytes, local_ms, remote_ms)` — the
/// elapsed time of a single local vs remote index lookup as the result
/// size grows.
pub fn fig12_row(cluster: &Cluster, index: &KvStore, result_bytes: usize) -> (usize, f64, f64) {
    use efind::IndexAccessor;
    let key = Datum::Int(0);
    let serve = index.serve_time(&key, result_bytes as u64);
    let transfer = cluster
        .network
        .transfer(key.size_bytes() + result_bytes as u64);
    (
        result_bytes,
        serve.as_millis_f64(),
        (serve + transfer).as_millis_f64(),
    )
}

/// The Fig. 12 sweep over the paper's result sizes (10 B – 30 KB).
pub fn fig12_rows() -> Vec<(usize, f64, f64)> {
    let cluster = Cluster::edbt_testbed();
    let config = SyntheticConfig {
        key_space: 16,
        num_records: 16,
        ..SyntheticConfig::default()
    };
    let index = build_index(&config, &cluster);
    [10, 100, 1_000, 10_000, 30_000]
        .iter()
        .map(|&l| fig12_row(&cluster, &index, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_mode;
    use efind::{Mode, Strategy};

    fn tiny() -> SyntheticConfig {
        SyntheticConfig {
            num_records: 2_000,
            key_space: 1_000,
            record_pad: 64,
            index_value_size: 128,
            chunks: 20,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn keys_are_uniform_over_space() {
        let config = tiny();
        let recs = generate(&config);
        let mut seen = std::collections::HashSet::new();
        for r in &recs {
            let k = r.value.as_list().unwrap()[0].as_int().unwrap();
            assert!((0..config.key_space as i64).contains(&k));
            seen.insert(k);
        }
        // ~2 records per key: a large fraction of the space is covered.
        assert!(seen.len() > config.key_space / 2);
    }

    #[test]
    fn join_attaches_index_values_under_all_strategies() {
        for strategy in [
            Strategy::Baseline,
            Strategy::Repartition,
            Strategy::IndexLocality,
        ] {
            let mut s = scenario(&tiny());
            run_mode(&mut s, "x", Mode::Uniform(strategy)).unwrap();
            let out = s.dfs.read_file("syn.joined").unwrap();
            assert_eq!(out.len(), 2_000, "{strategy:?}");
            for r in out.iter().take(20) {
                let v = r.value.as_list().unwrap();
                // Joined size recorded: 128-byte payload + datum header.
                assert!(v[1].as_int().unwrap() > 128, "{strategy:?}");
            }
        }
    }

    #[test]
    fn fig12_remote_gap_grows_with_result_size() {
        let rows = fig12_rows();
        assert_eq!(rows.len(), 5);
        let gap_small = rows[0].2 - rows[0].1;
        let gap_large = rows[4].2 - rows[4].1;
        assert!(gap_large > gap_small * 2.0, "{rows:?}");
        // Both curves increase.
        for w in rows.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].2 >= w[0].2);
        }
    }
}
