//! A text-analysis workload with an inverted index and an acronym
//! dictionary — the paper's first motivating application (§1):
//! *"Unstructured text analysis … often requires accessing indices, e.g.,
//! inverted indices, precomputed acronym dictionaries, and knowledge
//! bases."*
//!
//! The job scores a stream of short documents: a *head* operator expands
//! acronyms through a dictionary service, the Map extracts the rarest
//! expanded term per document, a *body* operator fetches that term's
//! document frequency from the inverted index (over a reference corpus),
//! and the Reduce buckets documents by rarity band.

use std::sync::Arc;

use efind::{operator_fn, BoundOperator, EFindConfig, IndexJobConf};
use efind_cluster::{Cluster, SimDuration};
use efind_common::{Datum, FxHashMap, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_index::{InvertedIndex, RemoteService};
use efind_mapreduce::{mapper_fn, reducer_fn, Collector};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::harness::Scenario;

/// Text workload configuration.
#[derive(Clone, Debug)]
pub struct TextConfig {
    /// Documents in the analyzed stream.
    pub num_docs: usize,
    /// Reference corpus size behind the inverted index.
    pub corpus_docs: usize,
    /// Vocabulary size (Zipf-ish usage).
    pub vocab: usize,
    /// Number of known acronyms.
    pub num_acronyms: usize,
    /// Words per document.
    pub words_per_doc: usize,
    /// Input chunks.
    pub chunks: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            num_docs: 20_000,
            corpus_docs: 4_000,
            vocab: 2_000,
            num_acronyms: 64,
            words_per_doc: 8,
            chunks: 240,
            seed: 0x7E47,
        }
    }
}

fn word(w: usize) -> String {
    format!("term{w}")
}

fn zipf_word(rng: &mut SmallRng, vocab: usize) -> usize {
    // Crude Zipf: quadratic skew toward low ids.
    let u: f64 = rng.gen_range(0.0..1.0);
    ((u * u) * vocab as f64) as usize % vocab.max(1)
}

/// Generates documents: `key = doc id`, `value = Text`. A fraction of the
/// words are acronyms (`AC<n>`) that the dictionary expands.
pub fn generate(config: &TextConfig) -> Vec<Record> {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    (0..config.num_docs)
        .map(|i| {
            let mut words = Vec::with_capacity(config.words_per_doc);
            for _ in 0..config.words_per_doc {
                if rng.gen_bool(0.25) {
                    words.push(format!("AC{}", rng.gen_range(0..config.num_acronyms)));
                } else {
                    words.push(word(zipf_word(&mut rng, config.vocab)));
                }
            }
            Record::new(i as i64, Datum::Text(words.join(" ")))
        })
        .collect()
}

/// The acronym dictionary: a remote service expanding `AC<n>` into a
/// deterministic two-word phrase.
pub fn acronym_dictionary(config: &TextConfig) -> Arc<RemoteService> {
    let vocab = config.vocab;
    Arc::new(RemoteService::new(
        "acronyms",
        SimDuration::from_micros(600),
        move |key| match key.as_text() {
            Some(acr) if acr.starts_with("AC") => {
                let n: usize = acr[2..].parse().unwrap_or(0);
                vec![Datum::Text(format!(
                    "{} {}",
                    word((n * 13) % vocab),
                    word((n * 29 + 7) % vocab)
                ))]
            }
            _ => Vec::new(),
        },
    ))
}

/// Builds the reference-corpus inverted index.
pub fn reference_index(config: &TextConfig, cluster: &Cluster) -> Arc<InvertedIndex> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xC0);
    let docs: Vec<(u64, String)> = (0..config.corpus_docs)
        .map(|d| {
            let text: Vec<String> = (0..12)
                .map(|_| word(zipf_word(&mut rng, config.vocab)))
                .collect();
            (d as u64, text.join(" "))
        })
        .collect();
    Arc::new(InvertedIndex::build(
        "corpus",
        cluster,
        32,
        docs.iter().map(|(d, t)| (*d, t.as_str())),
    ))
}

/// Builds the enhanced job.
pub fn build_job(dictionary: Arc<RemoteService>, corpus: Arc<InvertedIndex>) -> IndexJobConf {
    // Head: expand the document's FIRST acronym (if any) through the
    // dictionary; documents without acronyms pass through.
    let expand = operator_fn(
        "acronyms",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            let first_acr = rec
                .value
                .as_text()
                .and_then(|t| t.split_whitespace().find(|w| w.starts_with("AC")))
                .map(|w| Datum::Text(w.to_owned()))
                .unwrap_or(Datum::Text(String::new()));
            keys.put(0, first_acr);
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let Some(text) = rec.value.as_text() else {
                return;
            };
            let expanded = match values.first(0).first().and_then(Datum::as_text) {
                Some(expansion) => {
                    let mut t = text.to_owned();
                    t.push(' ');
                    t.push_str(expansion);
                    t
                }
                None => text.to_owned(),
            };
            out.collect(Record {
                key: rec.key,
                value: Datum::Text(expanded),
            });
        },
    );

    // Body: look the Map-chosen representative term up in the inverted
    // index; postProcess turns the posting list into a document frequency.
    let rarity = operator_fn(
        "rarity",
        1,
        |rec: &mut Record, keys: &mut efind::IndexInput| {
            keys.put(0, rec.value.clone());
        },
        |rec: Record, values: &efind::IndexOutput, out: &mut dyn Collector| {
            let df = values.first(0).len() as i64;
            // Rarity bands: 0 = unseen, then log-spaced.
            let band = match df {
                0 => 0,
                1..=3 => 1,
                4..=15 => 2,
                16..=63 => 3,
                _ => 4,
            };
            out.collect(Record {
                key: Datum::Int(band),
                value: rec.key,
            });
        },
    );

    IndexJobConf::new("text-rarity", "text.docs", "text.bands")
        .add_head_index_operator(BoundOperator::new(expand).add_index(dictionary))
        .set_mapper(mapper_fn(|rec, out, _| {
            // Map: pick the lexicographically-last expanded term (a cheap
            // deterministic "rarest term" heuristic) as the record value.
            let Some(text) = rec.value.as_text() else {
                return;
            };
            let Some(term) = text
                .split_whitespace()
                .filter(|w| !w.starts_with("AC"))
                .max()
            else {
                return;
            };
            out.collect(Record {
                key: rec.key,
                value: Datum::Text(term.to_owned()),
            });
        }))
        .add_body_index_operator(BoundOperator::new(rarity).add_index(corpus))
        .set_reducer(
            reducer_fn(|band, docs, out, _| {
                out.collect(Record::new(band, docs.len() as i64));
            }),
            8,
        )
}

/// Builds the full scenario.
pub fn scenario(config: &TextConfig) -> Scenario {
    let cluster = Cluster::edbt_testbed();
    let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
    dfs.write_file_with_chunks("text.docs", generate(config), config.chunks);
    let dictionary = acronym_dictionary(config);
    let corpus = reference_index(config, &cluster);
    let ijob = build_job(dictionary, corpus);
    Scenario {
        cluster,
        dfs,
        ijob,
        repart_overrides: FxHashMap::default(),
        idxloc_applicable: true, // the inverted index exposes a term scheme
        efind_config: EFindConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_mode;
    use efind::{Mode, Strategy};

    fn tiny() -> TextConfig {
        TextConfig {
            num_docs: 2_000,
            corpus_docs: 500,
            vocab: 300,
            chunks: 20,
            ..TextConfig::default()
        }
    }

    #[test]
    fn bands_cover_all_documents() {
        let mut s = scenario(&tiny());
        run_mode(&mut s, "x", Mode::Uniform(Strategy::Cache)).unwrap();
        let out = s.dfs.read_file("text.bands").unwrap();
        assert!(!out.is_empty());
        let total: i64 = out.iter().map(|r| r.value.as_int().unwrap()).sum();
        assert_eq!(total, 2_000);
        // With a Zipf vocabulary there must be both common and rare bands.
        assert!(out.len() >= 2, "only {} bands", out.len());
    }

    #[test]
    fn acronym_expansion_affects_results_deterministically() {
        use efind::IndexAccessor;
        let config = tiny();
        let dict = acronym_dictionary(&config);
        let a = dict.lookup(&Datum::Text("AC5".into()));
        assert_eq!(a.len(), 1);
        assert_eq!(a, dict.lookup(&Datum::Text("AC5".into())));
        assert!(dict.lookup(&Datum::Text("word".into())).is_empty());
    }

    #[test]
    fn strategies_agree_on_text_pipeline() {
        let config = tiny();
        let mut outputs = Vec::new();
        for strategy in [Strategy::Baseline, Strategy::Cache, Strategy::Repartition] {
            let mut s = scenario(&config);
            run_mode(&mut s, "x", Mode::Uniform(strategy)).unwrap();
            let mut out = s.dfs.read_file("text.bands").unwrap();
            out.sort();
            outputs.push(out);
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[0], outputs[2]);
    }

    #[test]
    fn dynamic_mode_runs_text_pipeline() {
        let mut s = scenario(&tiny());
        let m = run_mode(&mut s, "x", Mode::Dynamic).unwrap();
        assert!(m.secs > 0.0);
    }
}
