#![warn(missing_docs)]

//! Workloads and experiments for the EFind reproduction (§5).
//!
//! One module per data set / application family from the paper's
//! evaluation, plus the hand-tuned H-zkNNJ comparator and the harness
//! that regenerates every figure:
//!
//! * [`log`] — the web-log top-k-URLs-per-region application with a
//!   remote geo-IP service (Fig. 11(a)).
//! * [`tpch`] — a self-contained TPC-H-shaped generator and the Q3/Q9
//!   index-nested-loop-join jobs, plus DUP10 variants
//!   (Fig. 11(b)–(e)).
//! * [`synthetic`] — the uniform-key join with a result-size sweep
//!   (Fig. 11(f)) and the lookup-latency microbenchmark (Fig. 12).
//! * [`osm`] — clustered 2-D points and the EFind kNN join (Fig. 13).
//! * [`zknnj`] — a from-scratch H-zkNNJ implementation (Zhang, Li,
//!   Jestes, EDBT 2012), the paper's hand-tuned baseline in Fig. 13.
//! * [`topics`] — the spatio-temporal tweet-topics pipeline of
//!   Example 2.1 with three operators (head, body, tail).
//! * [`multi`] — an ad-enrichment job whose single operator accesses
//!   three independent indices (§3.5's multi-index planning problem).
//! * [`text`] — document rarity scoring with an acronym dictionary and
//!   an inverted index (the text-analysis motivation of §1).
//! * [`scanjoin`] — the conventional scan-based reduce-side join, the
//!   comparator behind §1's "index joins win under high selectivity".
//! * [`harness`] — shared experiment plumbing: build a scenario, run the
//!   six standard configurations (Base/Cache/Repart/Idxloc/Optimized/
//!   Dynamic), report virtual seconds.

pub mod harness;
pub mod log;
pub mod multi;
pub mod osm;
pub mod scanjoin;
pub mod synthetic;
pub mod text;
pub mod topics;
pub mod tpch;
pub mod zknnj;
