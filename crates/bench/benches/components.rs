//! Microbenchmarks of the reproduction's hot components: the lookup
//! cache, FM sketch, R\*-tree, shuffle partitioning, carrier
//! encode/decode, and plan enumeration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efind::cache::{LookupCache, ShadowCache};
use efind::carrier::Carrier;
use efind::cost::{IndexStatsEstimate, OperatorStatsEstimate};
use efind::plan::{optimize_operator, Enumeration};
use efind::CostEnv;
use efind_common::{fx_hash_datum, Datum, FmSketch, Record};
use efind_index::rtree::RStarTree;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn lru_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    g.bench_function("lru_probe_insert_zipfish", |b| {
        let keys: Vec<Datum> = (0..4096).map(|i| Datum::Int((i * i) % 2048)).collect();
        b.iter(|| {
            let mut cache = LookupCache::new(1024);
            for k in &keys {
                if cache.probe(k).is_none() {
                    cache.insert(k.clone(), vec![Datum::Int(1)].into());
                }
            }
            black_box(cache.miss_ratio())
        })
    });
    g.bench_function("shadow_cache_observe", |b| {
        let keys: Vec<Datum> = (0..4096).map(|i| Datum::Int(i % 512)).collect();
        b.iter(|| {
            let mut shadow = ShadowCache::new(1024);
            for k in &keys {
                shadow.observe(k);
            }
            black_box(shadow.miss_ratio())
        })
    });
    g.finish();
}

fn fm_sketch(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    g.bench_function("fm_insert_10k", |b| {
        b.iter(|| {
            let mut s = FmSketch::default();
            for i in 0..10_000i64 {
                s.insert(&Datum::Int(i));
            }
            black_box(s.estimate())
        })
    });
    g.finish();
}

fn rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    let mut rng = SmallRng::seed_from_u64(7);
    let points: Vec<([f64; 2], u64)> = (0..20_000)
        .map(|i| ([rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)], i))
        .collect();
    g.bench_function("rstar_build_20k", |b| {
        b.iter(|| black_box(RStarTree::bulk(points.iter().copied())))
    });
    let tree = RStarTree::bulk(points.iter().copied());
    g.bench_function("rstar_knn10", |b| {
        let mut q = 0.0f64;
        b.iter(|| {
            q = (q + 13.7) % 100.0;
            black_box(tree.knn([q, 100.0 - q], 10))
        })
    });
    g.finish();
}

fn hashing_and_carrier(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    g.bench_function("fx_hash_datum_composite", |b| {
        let k = Datum::composite([Datum::Int(42), Datum::Text("abcdef".into())]);
        b.iter(|| black_box(fx_hash_datum(&k)))
    });
    g.bench_function("carrier_roundtrip", |b| {
        let rec = Record::new(7i64, Datum::Bytes(vec![1u8; 128]));
        b.iter(|| {
            let carrier = Carrier::new(
                rec.key.clone(),
                rec.value.clone(),
                vec![vec![Datum::Int(9)]],
            );
            let r = carrier.into_record(Datum::Int(9));
            black_box(Carrier::from_record(r).unwrap())
        })
    });
    g.finish();
}

fn planner(c: &mut Criterion) {
    let mut g = c.benchmark_group("components");
    let env = CostEnv {
        bw_bytes_per_sec: 125.0e6,
        f_per_byte: 2.0e-8,
        t_cache_secs: 1.0e-6,
        lookup_latency_secs: 1.0e-4,
        shuffle_secs_per_byte: 3.6e-8,
        job_overhead_secs: 0.02,
        reduce_parallelism: 48.0,
        parallelism: 96.0,
    };
    let op = OperatorStatsEstimate {
        n1: 1.0e6,
        s1: 120.0,
        spre: 100.0,
        spost: 80.0,
        smap: 60.0,
        indices: (0..5)
            .map(|j| IndexStatsEstimate {
                nik: 1.0,
                sik: 9.0,
                siv: 100.0 * (j + 1) as f64,
                tj_secs: 5.0e-4,
                miss_ratio: 0.2 * j as f64,
                theta: 1.0 + j as f64 * 3.0,
                has_partition_scheme: j % 2 == 0,
                shuffleable: true,
                partitions: if j % 2 == 0 { 32 } else { 0 },
                failure_rate: 0.0,
            })
            .collect(),
    };
    g.bench_function("full_enumerate_5_indices", |b| {
        b.iter(|| {
            black_box(optimize_operator(
                &op,
                &env,
                efind::Placement::Body,
                Enumeration::Full,
            ))
        })
    });
    g.bench_function("krepart2_5_indices", |b| {
        b.iter(|| {
            black_box(optimize_operator(
                &op,
                &env,
                efind::Placement::Body,
                Enumeration::KRepart(2),
            ))
        })
    });
    g.finish();
}

criterion_group!(
    components,
    lru_cache,
    fm_sketch,
    rtree,
    hashing_and_carrier,
    planner
);
criterion_main!(components);
