//! Criterion benchmarks, one group per paper figure (Fig. 11(a)–(f),
//! Fig. 12, Fig. 13): each measures the *wall-clock* cost of regenerating
//! a representative point of the figure at reduced scale. The virtual
//! results themselves are produced by `--bin figures`; these benches
//! track the reproduction machinery's real-time performance.

use criterion::{criterion_group, criterion_main, Criterion};
use efind::{Mode, Strategy};
use efind_cluster::SimDuration;
use efind_workloads::harness::run_mode;
use efind_workloads::{log, osm, synthetic, tpch, zknnj};

fn bench_config(
    c: &mut Criterion,
) -> criterion::BenchmarkGroup<'_, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g
}

fn fig11a_log(c: &mut Criterion) {
    let mut g = bench_config(c);
    let config = log::LogConfig {
        num_events: 6_000,
        chunks: 120,
        extra_delay: SimDuration::from_millis(2),
        ..log::LogConfig::default()
    };
    g.bench_function("fig11a_log_cache", |b| {
        b.iter(|| {
            let mut s = log::scenario(&config);
            run_mode(&mut s, "cache", Mode::Uniform(Strategy::Cache)).unwrap()
        })
    });
    g.bench_function("fig11a_log_dynamic", |b| {
        b.iter(|| {
            let mut s = log::scenario(&config);
            run_mode(&mut s, "dyn", Mode::Dynamic).unwrap()
        })
    });
    g.finish();
}

fn fig11b_q3(c: &mut Criterion) {
    let mut g = bench_config(c);
    let config = tpch::TpchConfig {
        scale: 0.004,
        chunks: 120,
        ..tpch::TpchConfig::default()
    };
    g.bench_function("fig11b_q3_cache", |b| {
        b.iter(|| {
            let mut s = tpch::q3_scenario(&config);
            run_mode(&mut s, "cache", Mode::Uniform(Strategy::Cache)).unwrap()
        })
    });
    g.finish();
}

fn fig11c_q9(c: &mut Criterion) {
    let mut g = bench_config(c);
    let config = tpch::TpchConfig {
        scale: 0.004,
        chunks: 120,
        ..tpch::TpchConfig::default()
    };
    g.bench_function("fig11c_q9_repart", |b| {
        b.iter(|| {
            let mut s = tpch::q9_scenario(&config);
            let overrides = s.repart_overrides.clone();
            run_mode(&mut s, "repart", Mode::Manual(overrides)).unwrap()
        })
    });
    g.finish();
}

fn fig11d_dup10_q3(c: &mut Criterion) {
    let mut g = bench_config(c);
    let config = tpch::TpchConfig {
        scale: 0.002,
        dup_lineitem: 10,
        chunks: 120,
        ..tpch::TpchConfig::default()
    };
    g.bench_function("fig11d_dup10_q3_repart", |b| {
        b.iter(|| {
            let mut s = tpch::q3_scenario(&config);
            let overrides = s.repart_overrides.clone();
            run_mode(&mut s, "repart", Mode::Manual(overrides)).unwrap()
        })
    });
    g.finish();
}

fn fig11e_dup10_q9(c: &mut Criterion) {
    let mut g = bench_config(c);
    let config = tpch::TpchConfig {
        scale: 0.002,
        dup_lineitem: 10,
        chunks: 120,
        ..tpch::TpchConfig::default()
    };
    g.bench_function("fig11e_dup10_q9_repart", |b| {
        b.iter(|| {
            let mut s = tpch::q9_scenario(&config);
            let overrides = s.repart_overrides.clone();
            run_mode(&mut s, "repart", Mode::Manual(overrides)).unwrap()
        })
    });
    g.finish();
}

fn fig11f_synthetic(c: &mut Criterion) {
    let mut g = bench_config(c);
    for l in [10usize, 30_000] {
        let config = synthetic::SyntheticConfig {
            num_records: 4_000,
            key_space: 2_000,
            index_value_size: l,
            chunks: 120,
            ..synthetic::SyntheticConfig::default()
        };
        g.bench_function(format!("fig11f_synthetic_idxloc_{l}B"), |b| {
            b.iter(|| {
                let mut s = synthetic::scenario(&config);
                run_mode(&mut s, "idxloc", Mode::Uniform(Strategy::IndexLocality)).unwrap()
            })
        });
    }
    g.finish();
}

fn fig12_latency(c: &mut Criterion) {
    let mut g = bench_config(c);
    g.bench_function("fig12_latency_sweep", |b| b.iter(synthetic::fig12_rows));
    g.finish();
}

fn fig13_knnj(c: &mut Criterion) {
    let mut g = bench_config(c);
    let config = osm::OsmConfig {
        num_a: 2_000,
        num_b: 2_000,
        chunks: 120,
        ..osm::OsmConfig::default()
    };
    g.bench_function("fig13_knnj_efind_idxloc", |b| {
        b.iter(|| {
            let mut s = osm::scenario(&config);
            run_mode(&mut s, "idxloc", Mode::Uniform(Strategy::IndexLocality)).unwrap()
        })
    });
    g.bench_function("fig13_knnj_hzknnj", |b| {
        let (a, pts_b) = osm::generate_ab(&config);
        b.iter(|| {
            let mut s = osm::scenario(&config);
            let zconf = zknnj::ZknnjConfig {
                k: config.k,
                chunks: config.chunks,
                ..zknnj::ZknnjConfig::default()
            };
            zknnj::run(&s.cluster, &mut s.dfs, &zconf, &a, &pts_b).unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    figures,
    fig11a_log,
    fig11b_q3,
    fig11c_q9,
    fig11d_dup10_q3,
    fig11e_dup10_q9,
    fig11f_synthetic,
    fig12_latency,
    fig13_knnj
);
criterion_main!(figures);
