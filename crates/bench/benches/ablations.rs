//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! lookup cache capacity, the variance gate, the per-job overhead term,
//! and the planner's enumeration algorithm. Each measures the *virtual*
//! outcome of the choice and reports it through bench labels while timing
//! the machinery.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use efind::{EFindConfig, EFindRuntime, Enumeration, Mode, Strategy};
use efind_cluster::SimDuration;
use efind_workloads::log;

fn scenario() -> efind_workloads::harness::Scenario {
    log::scenario(&log::LogConfig {
        num_events: 6_000,
        chunks: 120,
        extra_delay: SimDuration::from_millis(2),
        ..log::LogConfig::default()
    })
}

fn cache_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for capacity in [64usize, 1024, 16_384] {
        g.bench_function(format!("cache_capacity_{capacity}"), |b| {
            b.iter(|| {
                let mut s = scenario();
                let config = EFindConfig {
                    cache_capacity: capacity,
                    ..s.efind_config.clone()
                };
                let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, config);
                black_box(
                    rt.run(&s.ijob, Mode::Uniform(Strategy::Cache))
                        .unwrap()
                        .total_time,
                )
            })
        });
    }
    g.finish();
}

fn variance_gate(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for (label, threshold) in [
        ("gate_strict", 0.01),
        ("gate_default", 0.5),
        ("gate_off", 1.0e9),
    ] {
        g.bench_function(format!("variance_{label}"), |b| {
            b.iter(|| {
                let mut s = scenario();
                let config = EFindConfig {
                    variance_threshold: threshold,
                    ..s.efind_config.clone()
                };
                let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, config);
                black_box(rt.run(&s.ijob, Mode::Dynamic).unwrap().replanned)
            })
        });
    }
    g.finish();
}

fn enumeration_choice(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for (label, enumeration) in [
        ("full_enumerate", Enumeration::Full),
        ("krepart_1", Enumeration::KRepart(1)),
    ] {
        g.bench_function(format!("enumeration_{label}"), |b| {
            b.iter(|| {
                let mut s = scenario();
                let config = EFindConfig {
                    enumeration,
                    ..s.efind_config.clone()
                };
                let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, config);
                rt.run(&s.ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
                black_box(rt.run(&s.ijob, Mode::Optimized).unwrap().total_time)
            })
        });
    }
    g.finish();
}

fn job_overhead_term(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    for (label, overhead) in [("overhead_zero", 0.0), ("overhead_default", 0.02)] {
        g.bench_function(format!("job_{label}"), |b| {
            b.iter(|| {
                let mut s = scenario();
                let config = EFindConfig {
                    job_overhead_secs: overhead,
                    ..s.efind_config.clone()
                };
                let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, config);
                rt.run(&s.ijob, Mode::Uniform(Strategy::Baseline)).unwrap();
                black_box(rt.run(&s.ijob, Mode::Optimized).unwrap().total_time)
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    cache_capacity,
    variance_gate,
    enumeration_choice,
    job_overhead_term
);
criterion_main!(ablations);
