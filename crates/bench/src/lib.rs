#![warn(missing_docs)]

//! Figure regeneration for the EFind reproduction.
//!
//! One function per table/figure of the paper's §5. Each returns the data
//! series the paper plots; `src/bin/figures.rs` renders them as text
//! tables and the Criterion benches in `benches/` time the underlying
//! machinery. `quick` scales inputs down ~4× for CI-speed runs; the full
//! scale is what `EXPERIMENTS.md` records.

use efind::{Mode, Strategy};
use efind_cluster::SimDuration;
use efind_common::Result;
use efind_workloads::harness::{run_mode, run_standard, secs_of, Measurement, Scenario};
use efind_workloads::{log, osm, synthetic, topics, tpch, zknnj};

/// A figure: titled groups of measurements (one group per x-value).
pub struct Figure {
    /// Figure id, e.g. `fig11a`.
    pub id: &'static str,
    /// Human title.
    pub title: String,
    /// `(x label, measurements)` per sweep point.
    pub groups: Vec<(String, Vec<Measurement>)>,
}

impl Figure {
    /// Renders the figure as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "== {} — {} ==", self.id, self.title);
        for (x, rows) in &self.groups {
            let _ = write!(s, "{}", efind_workloads::harness::format_table(x, rows));
        }
        s
    }
}

/// Fig. 11(a): LOG under 0–5 ms extra lookup delay.
pub fn fig11a(quick: bool) -> Result<Figure> {
    let delays_ms: &[u64] = if quick {
        &[0, 2, 5]
    } else {
        &[0, 1, 2, 3, 4, 5]
    };
    let mut groups = Vec::new();
    for &ms in delays_ms {
        let config = log::LogConfig {
            num_events: if quick { 12_000 } else { 60_000 },
            chunks: if quick { 240 } else { 480 },
            extra_delay: SimDuration::from_millis(ms),
            ..log::LogConfig::default()
        };
        let mut scenario = log::scenario(&config);
        groups.push((format!("extra delay {ms} ms"), run_standard(&mut scenario)?));
    }
    Ok(Figure {
        id: "fig11a",
        title: "LOG: top-k URLs per region, remote geo-IP service".into(),
        groups,
    })
}

fn tpch_config(quick: bool, dup: usize) -> tpch::TpchConfig {
    tpch::TpchConfig {
        scale: if quick { 0.0075 } else { 0.03 },
        dup_lineitem: dup,
        chunks: if quick { 240 } else { 400 },
        ..tpch::TpchConfig::default()
    }
}

/// Fig. 11(b): TPC-H Q3.
pub fn fig11b(quick: bool) -> Result<Figure> {
    let mut scenario = tpch::q3_scenario(&tpch_config(quick, 1));
    Ok(Figure {
        id: "fig11b",
        title: "TPC-H Q3 (LineItem ⋈ Orders ⋈ Customer)".into(),
        groups: vec![("Q3".into(), run_standard(&mut scenario)?)],
    })
}

/// Fig. 11(c): TPC-H Q9.
pub fn fig11c(quick: bool) -> Result<Figure> {
    let mut scenario = tpch::q9_scenario(&tpch_config(quick, 1));
    Ok(Figure {
        id: "fig11c",
        title: "TPC-H Q9 (LineItem ⋈ Supplier ⋈ Part ⋈ PartSupp ⋈ Orders ⋈ Nation)".into(),
        groups: vec![("Q9".into(), run_standard(&mut scenario)?)],
    })
}

/// Fig. 11(d): TPC-H DUP10 Q3.
pub fn fig11d(quick: bool) -> Result<Figure> {
    let mut scenario = tpch::q3_scenario(&tpch_config(quick, 10));
    Ok(Figure {
        id: "fig11d",
        title: "TPC-H DUP10 Q3 (LineItem ×10)".into(),
        groups: vec![("DUP10 Q3".into(), run_standard(&mut scenario)?)],
    })
}

/// Fig. 11(e): TPC-H DUP10 Q9.
pub fn fig11e(quick: bool) -> Result<Figure> {
    let mut scenario = tpch::q9_scenario(&tpch_config(quick, 10));
    Ok(Figure {
        id: "fig11e",
        title: "TPC-H DUP10 Q9 (LineItem ×10)".into(),
        groups: vec![("DUP10 Q9".into(), run_standard(&mut scenario)?)],
    })
}

/// Fig. 11(f): Synthetic join, index result size 10 B – 30 KB.
pub fn fig11f(quick: bool) -> Result<Figure> {
    let sizes: &[usize] = if quick {
        &[10, 1_000, 30_000]
    } else {
        &[10, 100, 1_000, 10_000, 30_000]
    };
    let mut groups = Vec::new();
    for &l in sizes {
        // One record budget across the sweep so the series are comparable;
        // sized so even the 30 KB index fits in memory comfortably.
        let records = if quick { 8_000 } else { 16_000 };
        let config = synthetic::SyntheticConfig {
            num_records: records,
            key_space: records / 2,
            index_value_size: l,
            chunks: if quick { 240 } else { 400 },
            ..synthetic::SyntheticConfig::default()
        };
        let mut scenario = synthetic::scenario(&config);
        groups.push((format!("result size {l} B"), run_standard(&mut scenario)?));
    }
    Ok(Figure {
        id: "fig11f",
        title: "Synthetic join: Θ≈2, uniform keys, varying result size".into(),
        groups,
    })
}

/// Fig. 12: single local vs remote lookup latency by result size.
pub fn fig12() -> Figure {
    let groups = synthetic::fig12_rows()
        .into_iter()
        .map(|(size, local_ms, remote_ms)| {
            (
                format!("result {size} B"),
                vec![
                    Measurement {
                        label: "local".into(),
                        secs: local_ms / 1e3,
                        replanned: false,
                    },
                    Measurement {
                        label: "remote".into(),
                        secs: remote_ms / 1e3,
                        replanned: false,
                    },
                ],
            )
        })
        .collect();
    Figure {
        id: "fig12",
        title: "Index lookup latency: local vs remote".into(),
        groups,
    }
}

/// Fig. 13: EFind kNN join vs the hand-tuned H-zkNNJ.
pub fn fig13(quick: bool) -> Result<Figure> {
    let config = osm::OsmConfig {
        num_a: if quick { 4_000 } else { 20_000 },
        num_b: if quick { 4_000 } else { 20_000 },
        chunks: if quick { 240 } else { 400 },
        ..osm::OsmConfig::default()
    };
    let mut scenario = osm::scenario(&config);
    let mut rows = run_standard(&mut scenario)?;

    // The hand-tuned comparator answers the same join on the same cluster.
    let (a, b) = osm::generate_ab(&config);
    let zconf = zknnj::ZknnjConfig {
        k: config.k,
        chunks: config.chunks,
        ..zknnj::ZknnjConfig::default()
    };
    let (dur, _results) = zknnj::run(&scenario.cluster, &mut scenario.dfs, &zconf, &a, &b)?;
    rows.push(Measurement {
        label: "h-zknnj".into(),
        secs: dur.as_secs_f64(),
        replanned: false,
    });
    Ok(Figure {
        id: "fig13",
        title: "k-nearest-neighbor join (k=10): EFind vs hand-tuned H-zkNNJ".into(),
        groups: vec![("kNNJ".into(), rows)],
    })
}

/// §5.3's Q9 dynamic-run phase breakdown (stats collection vs optimized
/// remainder).
pub fn e9(quick: bool) -> Result<Figure> {
    let mut scenario = tpch::q9_scenario(&tpch_config(quick, 1));
    let mut rt = efind::EFindRuntime::with_config(
        &scenario.cluster,
        &mut scenario.dfs,
        scenario.efind_config.clone(),
    );
    let res = rt.run(&scenario.ijob, Mode::Dynamic)?;
    let total = res.total_time.as_secs_f64();
    let stats_phase = res
        .jobs
        .first()
        .map(|j| j.started.as_secs_f64())
        .unwrap_or(0.0);
    let rows = vec![
        Measurement {
            label: "stats".into(),
            secs: stats_phase,
            replanned: res.replanned,
        },
        Measurement {
            label: "rest".into(),
            secs: total - stats_phase,
            replanned: res.replanned,
        },
        Measurement {
            label: "total".into(),
            secs: total,
            replanned: res.replanned,
        },
    ];
    Ok(Figure {
        id: "e9",
        title: "Q9 dynamic run: statistics wave vs re-optimized remainder (§5.3)".into(),
        groups: vec![("Q9 dynamic".into(), rows)],
    })
}

/// Plan-choice audit (§5.2–5.3's "optimal or close to optimal" claim):
/// compares the cost-based choice against the measured best strategy.
pub fn e10(quick: bool) -> Result<Figure> {
    let mut groups = Vec::new();
    type ScenarioBuilder = Box<dyn Fn() -> Scenario>;
    let scenarios: Vec<(&str, ScenarioBuilder)> = vec![
        (
            "LOG +2ms",
            Box::new(move || {
                log::scenario(&log::LogConfig {
                    num_events: if quick { 12_000 } else { 60_000 },
                    chunks: 240,
                    extra_delay: SimDuration::from_millis(2),
                    ..log::LogConfig::default()
                })
            }),
        ),
        (
            "TPC-H Q3",
            Box::new(move || tpch::q3_scenario(&tpch_config(true, 1))),
        ),
        (
            "TPC-H Q9",
            Box::new(move || tpch::q9_scenario(&tpch_config(true, 1))),
        ),
        (
            "Synthetic 10KB",
            Box::new(move || {
                synthetic::scenario(&synthetic::SyntheticConfig {
                    num_records: 10_000,
                    key_space: 5_000,
                    index_value_size: 10_000,
                    chunks: 240,
                    ..synthetic::SyntheticConfig::default()
                })
            }),
        ),
        (
            "Tweet topics",
            Box::new(move || {
                topics::scenario(&topics::TopicsConfig {
                    num_tweets: if quick { 6_000 } else { 20_000 },
                    chunks: 100,
                    ..topics::TopicsConfig::default()
                })
            }),
        ),
    ];
    for (name, build) in scenarios {
        let mut scenario = build();
        let mut rows = run_standard(&mut scenario)?;
        // Measured best among the forced strategies.
        let best = rows
            .iter()
            .filter(|m| !matches!(m.label.as_str(), "optimized" | "dynamic"))
            .map(|m| m.secs)
            .fold(f64::MAX, f64::min);
        let optimized = secs_of(&rows, "optimized");
        rows.push(Measurement {
            label: "opt/best".into(),
            secs: optimized / best,
            replanned: false,
        });
        groups.push((name.to_owned(), rows));
    }
    Ok(Figure {
        id: "e10",
        title: "Plan-choice audit: optimized vs measured-best strategy".into(),
        groups,
    })
}

/// The paper's stated future work (§4.2, footnote 4): *"Note that the
/// lookup cache size is fixed in our implementation. We leave the study
/// of varying lookup cache sizes to future work."* — a sweep over cache
/// capacities on the LOG workload.
pub fn e11(quick: bool) -> Result<Figure> {
    // Zipf-skewed join keys over a key space much larger than the small
    // capacities, with big splits so each task sees thousands of keys —
    // the regime where capacity matters.
    let config = synthetic::SyntheticConfig {
        num_records: if quick { 24_000 } else { 96_000 },
        key_space: 20_000,
        record_pad: 64,
        index_value_size: 256,
        key_skew: 6.0,
        chunks: 48,
        ..synthetic::SyntheticConfig::default()
    };
    let mut rows = Vec::new();
    for capacity in [16usize, 64, 256, 1024, 4096, 16_384] {
        let mut scenario = synthetic::scenario(&config);
        scenario.efind_config.cache_capacity = capacity;
        let m = run_mode(
            &mut scenario,
            &format!("cache-{capacity}"),
            Mode::Uniform(Strategy::Cache),
        )?;
        rows.push(m);
    }
    // Baseline anchor for the speedup column.
    let mut scenario = synthetic::scenario(&config);
    rows.insert(
        0,
        run_mode(&mut scenario, "base", Mode::Uniform(Strategy::Baseline))?,
    );
    Ok(Figure {
        id: "e11",
        title: "Lookup cache capacity sweep (Zipf keys) — the paper's stated future work".into(),
        groups: vec![("capacities".into(), rows)],
    })
}

/// Soft vs hard co-location under a degraded index host — the experiment
/// behind the paper's footnote 3: *"it is a bad idea to restrict a
/// reducer to select only a single machine in a dynamic cloud environment
/// because the unavailability of the machine can slow down the entire
/// MapReduce job. Therefore, we do not assume the co-location of lookup
/// keys and index partitions."* One node is slowed 8×; soft affinity
/// routes around it (paying remote lookups), hard co-location stalls.
pub fn e12(quick: bool) -> Result<Figure> {
    use efind_cluster::{Cluster, NodeId};
    use efind_dfs::{Dfs, DfsConfig};
    use efind_index::spatial::{SpatialGridConfig, SpatialGridIndex};
    use efind_workloads::harness::Scenario;

    let config = osm::OsmConfig {
        num_a: if quick { 4_000 } else { 10_000 },
        num_b: if quick { 4_000 } else { 10_000 },
        chunks: 240,
        ..osm::OsmConfig::default()
    };
    // The footnote's "tempting idea" pins reducer i to THE machine
    // hosting partition i — meaningful only with a single replica.
    let build = |degrade: bool, hard: bool| -> Scenario {
        let mut builder = Cluster::builder().network(efind_cluster::NetworkModel {
            bandwidth_bytes_per_sec: 125.0e6,
            latency: SimDuration::from_micros(1_500),
        });
        if degrade {
            builder = builder.degrade(NodeId(0), 30.0);
        }
        let cluster = builder.build();
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let (a, b) = osm::generate_ab(&config);
        dfs.write_file_with_chunks("osm.a", osm::points_to_records(&a), config.chunks);
        let index = std::sync::Arc::new(SpatialGridIndex::build(
            "osm-b",
            &cluster,
            SpatialGridConfig {
                k: config.k,
                replication: 1,
                ..SpatialGridConfig::default()
            },
            osm::bbox(),
            b,
        ));
        let mut scenario = Scenario {
            cluster,
            dfs,
            ijob: osm::build_job(index),
            repart_overrides: efind_common::FxHashMap::default(),
            idxloc_applicable: true,
            efind_config: Default::default(),
        };
        scenario.efind_config.hard_colocation = hard;
        scenario
    };

    let mut rows = Vec::new();
    let mut s = build(false, false);
    rows.push(run_mode(
        &mut s,
        "healthy/soft",
        Mode::Uniform(Strategy::IndexLocality),
    )?);
    let mut s = build(true, false);
    rows.push(run_mode(
        &mut s,
        "degraded/soft",
        Mode::Uniform(Strategy::IndexLocality),
    )?);
    let mut s = build(true, true);
    rows.push(run_mode(
        &mut s,
        "degraded/hard",
        Mode::Uniform(Strategy::IndexLocality),
    )?);

    Ok(Figure {
        id: "e12",
        title:
            "Index locality under a degraded node: soft affinity vs hard co-location (§3.4 fn.3)"
                .into(),
        groups: vec![("kNN join".into(), rows)],
    })
}

/// Speculative execution under surprise stragglers — the Hadoop 1.x
/// mechanism the paper's testbed relied on, reproduced: one node is
/// degraded *without* the scheduler's knowledge, and backup tasks rescue
/// the job's tail.
pub fn e13(quick: bool) -> Result<Figure> {
    use efind_cluster::{Cluster, NodeId};
    let config = log::LogConfig {
        num_events: if quick { 12_000 } else { 60_000 },
        chunks: 240,
        extra_delay: SimDuration::from_millis(2),
        ..log::LogConfig::default()
    };
    let with_cluster = |speculation: bool, degraded: bool| -> Result<Measurement> {
        let mut builder = Cluster::builder();
        if degraded {
            builder = builder.degrade_hidden(NodeId(3), 12.0);
        }
        let mut scenario = log::scenario(&config);
        scenario.cluster = builder.speculation(speculation).build();
        // The DFS was placed for the default cluster; node counts match,
        // so chunk placements remain valid.
        run_mode(
            &mut scenario,
            match (degraded, speculation) {
                (false, _) => "healthy",
                (true, false) => "straggler/no-spec",
                (true, true) => "straggler/spec",
            },
            Mode::Uniform(Strategy::Cache),
        )
    };
    let rows = vec![
        with_cluster(false, false)?,
        with_cluster(false, true)?,
        with_cluster(true, true)?,
    ];
    Ok(Figure {
        id: "e13",
        title: "Speculative execution vs a hidden straggler node (LOG, cache strategy)".into(),
        groups: vec![("LOG".into(), rows)],
    })
}

/// Index join vs scan-based join across fact-filter selectivities — the
/// §1 motivation: *"Index-based joins … have been shown to out-perform
/// scan-based joins under high join selectivity."* The scan join pays for
/// scanning and shuffling the whole Orders table regardless of the fact
/// filter; the index join probes per surviving fact row.
pub fn e14(quick: bool) -> Result<Figure> {
    use efind_dfs::{Dfs, DfsConfig};
    use efind_workloads::scanjoin;
    let cluster = efind_cluster::Cluster::edbt_testbed();
    let data = tpch::generate(&tpch::TpchConfig {
        scale: if quick { 0.0075 } else { 0.03 },
        chunks: 240,
        ..tpch::TpchConfig::default()
    });
    let mut groups = Vec::new();
    // shipdate < cutoff ≈ cutoff/2400 of lineitems.
    for (label, cutoff) in [
        ("σ≈0.1%", 3i64),
        ("σ≈1%", 24),
        ("σ≈10%", 240),
        ("σ≈50%", 1200),
        ("σ≈100%", i64::MAX),
    ] {
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let (scan_t, scan_n) = scanjoin::run_scan_join(&cluster, &mut dfs, &data, cutoff, 240)?;
        let (index_t, index_n) = scanjoin::run_index_join(&cluster, &mut dfs, &data, cutoff, 240)?;
        debug_assert_eq!(scan_n, index_n);
        groups.push((
            format!("{label} ({scan_n} joined rows)"),
            vec![
                Measurement {
                    label: "scan-join".into(),
                    secs: scan_t.as_secs_f64(),
                    replanned: false,
                },
                Measurement {
                    label: "index-join".into(),
                    secs: index_t.as_secs_f64(),
                    replanned: false,
                },
            ],
        ));
    }
    Ok(Figure {
        id: "e14",
        title: "Index join vs scan-based join by fact selectivity (§1 motivation)".into(),
        groups,
    })
}

/// Runs one figure by id.
pub fn run_figure(id: &str, quick: bool) -> Result<Figure> {
    match id {
        "fig11a" => fig11a(quick),
        "fig11b" => fig11b(quick),
        "fig11c" => fig11c(quick),
        "fig11d" => fig11d(quick),
        "fig11e" => fig11e(quick),
        "fig11f" => fig11f(quick),
        "fig12" => Ok(fig12()),
        "fig13" => fig13(quick),
        "e9" => e9(quick),
        "e10" => e10(quick),
        "e11" => e11(quick),
        "e12" => e12(quick),
        "e13" => e13(quick),
        "e14" => e14(quick),
        other => Err(efind_common::Error::InvalidConfig(format!(
            "unknown figure id {other}; known: fig11a..fig11f, fig12, fig13, e9, e10, e11, e12, e13, e14"
        ))),
    }
}

/// All figure ids in presentation order.
pub const ALL_FIGURES: [&str; 14] = [
    "fig11a", "fig11b", "fig11c", "fig11d", "fig11e", "fig11f", "fig12", "fig13", "e9", "e10",
    "e11", "e12", "e13", "e14",
];

/// Convenience for tests: run a single-mode scenario quickly.
pub fn quick_seconds(scenario: &mut Scenario, strategy: Strategy) -> Result<f64> {
    Ok(run_mode(scenario, "x", Mode::Uniform(strategy))?.secs)
}
