//! Regenerates every table and figure of the paper's evaluation (§5).
//!
//! ```text
//! cargo run --release -p efind-bench --bin figures            # all, full scale
//! cargo run --release -p efind-bench --bin figures -- --quick # scaled down
//! cargo run --release -p efind-bench --bin figures -- --only fig11a
//! cargo run --release -p efind-bench --bin figures -- --csv out/   # also write CSV series
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let only: Option<String> = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1).cloned());
    let csv_dir: Option<String> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());
    if let Some(dir) = &csv_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create csv directory {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let ids: Vec<&str> = match &only {
        Some(id) => vec![id.as_str()],
        None => efind_bench::ALL_FIGURES.to_vec(),
    };

    for id in ids {
        let start = std::time::Instant::now();
        match efind_bench::run_figure(id, quick) {
            Ok(figure) => {
                println!("{}", figure.render());
                eprintln!(
                    "[{} generated in {:.1}s wall]",
                    id,
                    start.elapsed().as_secs_f64()
                );
                if let Some(dir) = &csv_dir {
                    let path = format!("{dir}/{id}.csv");
                    let mut csv = String::from("group,config,virtual_seconds,replanned\n");
                    for (group, rows) in &figure.groups {
                        for m in rows {
                            csv.push_str(&format!(
                                "{group},{},{:.6},{}\n",
                                m.label, m.secs, m.replanned
                            ));
                        }
                    }
                    if let Err(e) = std::fs::write(&path, csv) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("error generating {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
