//! Prints the optimizer's chosen plan and per-job breakdown for one
//! experiment — the reproduction's equivalent of `EXPLAIN`.
//!
//! ```text
//! cargo run --release -p efind-bench --bin explain -- q9
//! ```

use efind::{EFindRuntime, Mode, Strategy};
use efind_workloads::{log, multi, osm, synthetic, topics, tpch};

fn indent(text: &str) -> String {
    text.lines().map(|l| format!("  {l}\n")).collect()
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "q9".into());
    let mut scenario = match which.as_str() {
        "q3" => tpch::q3_scenario(&tpch::TpchConfig {
            scale: 0.0075,
            chunks: 240,
            ..tpch::TpchConfig::default()
        }),
        "q9" => tpch::q9_scenario(&tpch::TpchConfig {
            scale: 0.0075,
            chunks: 240,
            ..tpch::TpchConfig::default()
        }),
        "log" => log::scenario(&log::LogConfig {
            num_events: 12_000,
            chunks: 240,
            extra_delay: efind_cluster::SimDuration::from_millis(2),
            ..log::LogConfig::default()
        }),
        "syn" => synthetic::scenario(&synthetic::SyntheticConfig {
            num_records: 8_000,
            key_space: 4_000,
            index_value_size: 1_000,
            chunks: 240,
            ..synthetic::SyntheticConfig::default()
        }),
        "osm" => osm::scenario(&osm::OsmConfig {
            num_a: 4_000,
            num_b: 4_000,
            chunks: 240,
            ..osm::OsmConfig::default()
        }),
        "topics" => topics::scenario(&topics::TopicsConfig {
            num_tweets: 20_000,
            ..topics::TopicsConfig::default()
        }),
        "multi" => multi::scenario(&multi::MultiConfig::default()),
        other => {
            eprintln!("unknown scenario {other}; known: q3, q9, log, syn, osm, topics, multi");
            std::process::exit(1);
        }
    };

    let mut rt = EFindRuntime::with_config(
        &scenario.cluster,
        &mut scenario.dfs,
        scenario.efind_config.clone(),
    );

    let base = rt
        .run(&scenario.ijob, Mode::Uniform(Strategy::Baseline))
        .expect("baseline run");
    println!("baseline: {:.3}s", base.total_time.as_secs_f64());

    // Catalog now populated; show what the optimizer sees and picks.
    for (bound, placement) in scenario.ijob.operators() {
        let name = bound.op.name();
        if let Some(stats) = rt.catalog.get(name) {
            println!(
                "\noperator {name} ({placement:?}): n1={:.0} spre={:.0}B spost={:.0}B smap={:.0}B",
                stats.n1, stats.spre, stats.spost, stats.smap
            );
            for (j, idx) in stats.indices.iter().enumerate() {
                println!(
                    "  index {j}: nik={:.2} sik={:.0}B siv={:.0}B tj={:.0}µs R={:.2} Θ={:.1} scheme={} shuffleable={}",
                    idx.nik, idx.sik, idx.siv, idx.tj_secs * 1e6, idx.miss_ratio, idx.theta,
                    idx.has_partition_scheme, idx.shuffleable,
                );
            }
        }
    }

    // Forced-strategy breakdowns for comparison.
    for strategy in [
        Strategy::Cache,
        Strategy::Repartition,
        Strategy::IndexLocality,
    ] {
        match rt.run(&scenario.ijob, Mode::Uniform(strategy)) {
            Ok(res) => {
                println!("\n{strategy:?}: {:.3}s", res.total_time.as_secs_f64());
                for job in &res.jobs {
                    let (rtasks, aff) = job
                        .reduce
                        .as_ref()
                        .map(|r| {
                            let hits = r
                                .schedule
                                .assignments
                                .iter()
                                .filter(|a| a.affinity_hit)
                                .count();
                            (
                                r.tasks.len(),
                                format!("{}/{} affinity hits", hits, r.tasks.len()),
                            )
                        })
                        .unwrap_or((0, String::new()));
                    println!(
                        "  job {}: {:.3}s (maps {} reduces {} {})",
                        job.name,
                        job.makespan().as_secs_f64(),
                        job.map.tasks.len(),
                        rtasks,
                        aff,
                    );
                }
            }
            Err(e) => println!("\n{strategy:?}: error {e}"),
        }
    }

    // Static analysis of the optimized plan: structural checks over the
    // plan the optimizer would pick, plus the statistics-dependent
    // cost-model checks (EF009..EF013) from the freshly-populated catalog.
    println!("\nstatic analysis:");
    match rt.plans_for(&scenario.ijob, &Mode::Optimized) {
        Ok(plans) => match efind::analysis::analyze_job(&scenario.ijob, &plans) {
            Ok(report) if report.is_clean() => println!("  structural: clean"),
            Ok(report) => print!("{}", indent(&report.to_text())),
            Err(e) => println!("  structural: {e}"),
        },
        Err(e) => println!("  structural: {e}"),
    }
    let cost_report = efind::analysis::analyze_costs(
        &scenario.ijob,
        &rt.catalog,
        &rt.cost_env(),
        rt.config.enumeration,
    );
    if cost_report.is_clean() {
        println!("  cost model: clean");
    } else {
        print!("{}", indent(&cost_report.to_text()));
    }

    let opt = rt
        .run(&scenario.ijob, Mode::Optimized)
        .expect("optimized run");
    println!(
        "\noptimized: {:.3}s ({} jobs)",
        opt.total_time.as_secs_f64(),
        opt.jobs.len()
    );
    let mut plans = opt.plans.clone();
    plans.sort_by(|a, b| a.0.cmp(&b.0));
    for (op, plan) in &plans {
        let choices: Vec<String> = plan
            .choices
            .iter()
            .map(|c| {
                format!(
                    "{}:{} ({:.2}s est)",
                    c.index,
                    c.strategy.label(),
                    c.est_cost_secs / 96.0
                )
            })
            .collect();
        println!("  {op}: [{}]", choices.join(", "));
    }
    for job in &opt.jobs {
        println!(
            "  job {}: {:.3}s (maps {} reduces {}, shuffle {} B)",
            job.name,
            job.makespan().as_secs_f64(),
            job.map.tasks.len(),
            job.reduce.as_ref().map(|r| r.tasks.len()).unwrap_or(0),
            job.shuffle_bytes,
        );
    }

    // Virtual timeline of the optimized run's last job.
    if let Some(job) = opt.jobs.last() {
        println!(
            "
map-phase timeline of {}:",
            job.name
        );
        print!("{}", efind_mapreduce::report::render_timeline(&job.map, 72));
        if let Some(reduce) = &job.reduce {
            println!("reduce-phase timeline:");
            print!(
                "{}",
                efind_mapreduce::report::render_schedule_timeline(&reduce.schedule, 72)
            );
        }
    }
}
