//! Wall-clock hot-path benchmark (`cargo run --release -p efind-bench --bin hotpath`).
//!
//! Unlike the figure benches — which report *virtual* SimTime — this
//! harness measures real elapsed time of the framework hot paths over
//! three representative workloads:
//!
//! * `wordcount` — plain MapReduce: map emit, shuffle partition, sort,
//!   group, reduce (no index access at all).
//! * `scanjoin` — the reduce-side TPC-H LineItem ⋈ Orders join: DFS
//!   write, tagged shuffle, large reduce groups.
//! * `lookup_heavy` — the synthetic join under the cache strategy: one
//!   index lookup per record through `ChargedLookup`, the per-lookup
//!   counter/sketch path, and the lookup cache.
//!
//! Results append to `BENCH_hotpath.json` as one labeled run:
//! `{workload, wall_ms, peak_rss_kb, lookups_per_s, virtual_secs}`.
//! `virtual_secs` is the *virtual* makespan — it must be bit-identical
//! across hot-path rewrites (real-time optimizations must never move the
//! simulated clock).
//!
//! `--check` re-measures every workload (median of 3) and exits nonzero
//! if any wall-clock regresses more than 25% against the last committed
//! run — the criterion-style regression gate wired into `scripts/ci.sh`.

use std::time::Instant;

use efind::{EFindConfig, EFindRuntime, Mode, Strategy};
use efind_cluster::Cluster;
use efind_common::{Datum, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_mapreduce::{mapper_fn, reducer_fn, run_job, JobConf};
use efind_workloads::scanjoin::run_scan_join;
use efind_workloads::synthetic::{self, SyntheticConfig};
use efind_workloads::tpch::{self, TpchConfig};

/// Wall-clock regression tolerance for `--check` (fraction over baseline).
const CHECK_TOLERANCE: f64 = 0.25;

/// One measured workload.
#[derive(Clone, Debug)]
struct WorkloadResult {
    workload: String,
    wall_ms: f64,
    peak_rss_kb: u64,
    lookups_per_s: f64,
    virtual_secs: f64,
}

/// One labeled benchmark run (a row group in the JSON trajectory).
#[derive(Clone, Debug)]
struct BenchRun {
    label: String,
    iters: usize,
    results: Vec<WorkloadResult>,
}

fn main() {
    let mut label = String::from("run");
    let mut iters = 5usize;
    let mut out_path = String::from("BENCH_hotpath.json");
    let mut check = false;
    let mut faults = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => {
                label = args
                    .next()
                    .unwrap_or_else(|| usage("--label needs a value"))
            }
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters needs a number"))
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--check" => check = true,
            "--faults" => faults = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }

    if check {
        std::process::exit(run_check(&out_path));
    }

    let run = measure_all(&label, iters.max(1), faults);
    print_table(&run);
    let mut runs = parse_runs(&std::fs::read_to_string(&out_path).unwrap_or_default());
    runs.push(run);
    let json = render_json(&runs);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("hotpath: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("appended run to {out_path}");
}

fn usage(msg: &str) -> ! {
    eprintln!("hotpath: {msg}");
    eprintln!("usage: hotpath [--label NAME] [--iters N] [--out PATH] [--check] [--faults]");
    std::process::exit(2)
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

fn measure_all(label: &str, iters: usize, faults: bool) -> BenchRun {
    let mut results = vec![
        measure("wordcount", iters, bench_wordcount),
        measure("scanjoin", iters, bench_scanjoin()),
        measure("lookup_heavy", iters, bench_lookup_heavy),
    ];
    if faults {
        // Recorded only, never gated: `run_check` skips workloads absent
        // from the committed baseline, so the faulty scenario's wall
        // clock is tracked without failing CI on its (retry-dominated)
        // variance.
        results.push(measure(
            "lookup_heavy_faulty",
            iters,
            bench_lookup_heavy_faulty,
        ));
        results.push(measure(
            "lookup_heavy_nodecrash",
            iters,
            bench_lookup_heavy_nodecrash,
        ));
        results.push(measure(
            "lookup_heavy_corrupt",
            iters,
            bench_lookup_heavy_corrupt,
        ));
    }
    BenchRun {
        label: label.to_owned(),
        iters,
        results,
    }
}

/// Times `iters` runs of a workload and keeps the median wall-clock.
/// The returned tuple from the workload closure is
/// `(lookup keys served, virtual seconds)`.
fn measure(name: &str, iters: usize, mut body: impl FnMut() -> (u64, f64)) -> WorkloadResult {
    let mut walls = Vec::with_capacity(iters);
    let mut lookups = 0u64;
    let mut virtual_secs = 0.0f64;
    for _ in 0..iters {
        let t0 = Instant::now();
        let (n, vs) = body();
        walls.push(t0.elapsed().as_secs_f64() * 1e3);
        lookups = n;
        virtual_secs = vs;
    }
    let wall_ms = median(&mut walls);
    WorkloadResult {
        workload: name.to_owned(),
        wall_ms,
        peak_rss_kb: peak_rss_kb(),
        lookups_per_s: if wall_ms > 0.0 {
            lookups as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        virtual_secs,
    }
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

/// Peak resident set size (VmHWM) in kB; 0 where /proc is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Plain wordcount: 120k words, 48 chunks, 8 reducers. Setup (input
/// generation, DFS write) is untimed; only the job run is measured.
fn bench_wordcount() -> (u64, f64) {
    const VOCAB: [&str; 24] = [
        "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "pack", "my", "box",
        "with", "five", "dozen", "liquor", "jugs", "how", "vexingly", "daft", "zebras", "judge",
        "sphinx", "of", "quartz",
    ];
    let cluster = Cluster::builder()
        .nodes(8)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let mut dfs = Dfs::new(
        cluster.clone(),
        DfsConfig {
            chunk_size_bytes: 1 << 20,
            replication: 2,
            seed: 9,
        },
    );
    let records: Vec<Record> = (0..120_000usize)
        .map(|i| Record::new(i as i64, VOCAB[(i * 7919) % VOCAB.len()]))
        .collect();
    dfs.write_file_with_chunks("input", records, 48);
    let conf = JobConf::new("wordcount", "input", "out")
        .add_mapper(mapper_fn(|rec, out, _| {
            out.collect(Record::new(rec.value.clone(), 1i64));
        }))
        .with_reducer(
            reducer_fn(|key, values, out, _| {
                let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                out.collect(Record::new(key, total));
            }),
            8,
        );
    let res = run_job(&cluster, &mut dfs, &conf).expect("wordcount failed");
    (0, res.stats.makespan().as_secs_f64())
}

/// Reduce-side TPC-H join; the generated tables are shared across
/// iterations, the timed section includes the tagged-input DFS write the
/// scan join performs itself.
fn bench_scanjoin() -> impl FnMut() -> (u64, f64) {
    let data = tpch::generate(&TpchConfig {
        scale: 0.01,
        chunks: 40,
        seed: 3,
        ..TpchConfig::default()
    });
    let cluster = Cluster::edbt_testbed();
    move || {
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let (t, joined) =
            run_scan_join(&cluster, &mut dfs, &data, 2_500, 40).expect("scan join failed");
        assert!(joined > 0, "scan join joined nothing");
        (0, t.as_secs_f64())
    }
}

/// The lookup-heavy synthetic join under the cache strategy: 24k records,
/// Θ = 10 duplicate keys, small payloads so the per-lookup framework path
/// (counters, sketches, cache, charging) dominates. `lookups_per_s`
/// reports requested keys (`nik`) per wall-clock second.
fn bench_lookup_heavy() -> (u64, f64) {
    run_lookup_heavy(
        efind::FaultConfig::disabled(),
        efind_cluster::ChaosPlan::none(),
        efind_cluster::CorruptionPlan::none(),
    )
}

/// `lookup_heavy` with the fault layer armed at a 5% mixed fault rate:
/// the same join, now exercising the per-attempt fault draw, the retry
/// loop, and the fault counters on every lookup. Enabled by `--faults`.
fn bench_lookup_heavy_faulty() -> (u64, f64) {
    use efind_cluster::SimDuration;
    let mut faults = efind::FaultConfig::disabled().with_plan(
        efind::FaultPlan::new(0xEF1D_0001)
            .failures(0.03)
            .timeouts(0.01)
            .slowdowns(0.01, 4.0),
    );
    faults.retry = efind::RetryPolicy::bounded(
        16,
        SimDuration::from_micros(50),
        SimDuration::from_millis(5),
    );
    faults.timeout = Some(SimDuration::from_millis(50));
    run_lookup_heavy(
        faults,
        efind_cluster::ChaosPlan::none(),
        efind_cluster::CorruptionPlan::none(),
    )
}

/// `lookup_heavy` with two seeded node crashes landing mid-job (the
/// virtual makespan is ~188 ms; the deaths draw from [25 ms, 115 ms)):
/// exercises lost-output recompute waves, shuffle-fetch retries, and DFS
/// re-replication on the wall clock. Enabled by `--faults`, recorded
/// only — `run_check` skips it.
fn bench_lookup_heavy_nodecrash() -> (u64, f64) {
    use efind_cluster::{ChaosPlan, SimDuration, SimTime};
    let chaos = ChaosPlan::seeded(
        0xEF1D_0002,
        Cluster::edbt_testbed().num_nodes(),
        2,
        SimTime::ZERO + SimDuration::from_millis(25),
        SimDuration::from_millis(90),
    );
    run_lookup_heavy(
        efind::FaultConfig::disabled(),
        chaos,
        efind_cluster::CorruptionPlan::none(),
    )
}

/// `lookup_heavy` with the corruption plan armed on every surface at low
/// rates: CRC verification on each chunk read, shuffle fetch, cache hit,
/// and index response, plus the repair paths the detections trigger.
/// Enabled by `--faults`, recorded only — `run_check` skips it.
fn bench_lookup_heavy_corrupt() -> (u64, f64) {
    let corruption = efind_cluster::CorruptionPlan::new(0xEF1D_0004)
        .chunks(0.02)
        .shuffle(0.05)
        .cache(0.05)
        .responses(0.02);
    run_lookup_heavy(
        efind::FaultConfig::disabled(),
        efind_cluster::ChaosPlan::none(),
        corruption,
    )
}

fn run_lookup_heavy(
    faults: efind::FaultConfig,
    chaos: efind_cluster::ChaosPlan,
    corruption: efind_cluster::CorruptionPlan,
) -> (u64, f64) {
    let config = SyntheticConfig {
        num_records: 24_000,
        key_space: 2_400,
        record_pad: 16,
        index_value_size: 64,
        chunks: 48,
        ..SyntheticConfig::default()
    };
    let mut s = synthetic::scenario(&config);
    let efind_config = EFindConfig {
        faults,
        chaos,
        corruption,
        ..EFindConfig::default()
    };
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, efind_config);
    let res = rt
        .run(&s.ijob, Mode::Uniform(Strategy::Cache))
        .expect("synthetic join failed");
    let served: i64 = res
        .jobs
        .iter()
        .map(|j| j.counters.get("efind.synjoin.0.nik"))
        .sum();
    (served.max(0) as u64, res.total_time.as_secs_f64())
}

// ---------------------------------------------------------------------
// Regression check
// ---------------------------------------------------------------------

fn run_check(out_path: &str) -> i32 {
    let Ok(text) = std::fs::read_to_string(out_path) else {
        eprintln!("hotpath --check: no baseline file {out_path}");
        return 2;
    };
    let runs = parse_runs(&text);
    let Some(baseline) = runs.last() else {
        eprintln!("hotpath --check: {out_path} contains no runs");
        return 2;
    };
    println!(
        "checking against run \"{}\" ({} workloads), tolerance {:.0}%",
        baseline.label,
        baseline.results.len(),
        CHECK_TOLERANCE * 100.0
    );
    // A single iteration is too noisy to gate on: take a median of 3,
    // like the recording path.
    let fresh = measure_all("check", 3, false);
    let mut failed = false;
    for now in &fresh.results {
        let Some(base) = baseline.results.iter().find(|b| b.workload == now.workload) else {
            println!(
                "  {:<14} {:>9.1} ms  (no baseline, skipped)",
                now.workload, now.wall_ms
            );
            continue;
        };
        let limit = base.wall_ms * (1.0 + CHECK_TOLERANCE);
        let ok = now.wall_ms <= limit;
        println!(
            "  {:<14} {:>9.1} ms vs baseline {:>9.1} ms (limit {:>9.1})  {}",
            now.workload,
            now.wall_ms,
            base.wall_ms,
            limit,
            if ok { "ok" } else { "REGRESSED" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!(
            "hotpath --check: wall-clock regression over {:.0}% detected",
            CHECK_TOLERANCE * 100.0
        );
        1
    } else {
        0
    }
}

fn print_table(run: &BenchRun) {
    println!(
        "hotpath run \"{}\" ({} iters, median wall-clock):",
        run.label, run.iters
    );
    for r in &run.results {
        println!(
            "  {:<14} {:>9.1} ms   rss {:>8} kB   {:>12.0} lookups/s   virtual {:.6} s",
            r.workload, r.wall_ms, r.peak_rss_kb, r.lookups_per_s, r.virtual_secs
        );
    }
}

// ---------------------------------------------------------------------
// JSON (hand-rolled: the workspace vendors no serde; the format keeps one
// result object per line so parsing stays a line scan)
// ---------------------------------------------------------------------

fn render_json(runs: &[BenchRun]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"hotpath\",\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"label\": \"{}\", \"iters\": {}, \"results\": [",
            run.label, run.iters
        );
        for (j, r) in run.results.iter().enumerate() {
            let _ = writeln!(
                s,
                "      {{ \"workload\": \"{}\", \"wall_ms\": {:.3}, \"peak_rss_kb\": {}, \
                 \"lookups_per_s\": {:.1}, \"virtual_secs\": {:.9} }}{}",
                r.workload,
                r.wall_ms,
                r.peak_rss_kb,
                r.lookups_per_s,
                r.virtual_secs,
                if j + 1 == run.results.len() { "" } else { "," }
            );
        }
        let _ = writeln!(s, "    ] }}{}", if i + 1 == runs.len() { "" } else { "," });
    }
    s.push_str("  ]\n}\n");
    s
}

fn parse_runs(text: &str) -> Vec<BenchRun> {
    let mut runs: Vec<BenchRun> = Vec::new();
    for line in text.lines() {
        if let Some(label) = extract_str(line, "label") {
            runs.push(BenchRun {
                label,
                iters: extract_num(line, "iters").unwrap_or(1.0) as usize,
                results: Vec::new(),
            });
        } else if let Some(workload) = extract_str(line, "workload") {
            if let Some(run) = runs.last_mut() {
                run.results.push(WorkloadResult {
                    workload,
                    wall_ms: extract_num(line, "wall_ms").unwrap_or(0.0),
                    peak_rss_kb: extract_num(line, "peak_rss_kb").unwrap_or(0.0) as u64,
                    lookups_per_s: extract_num(line, "lookups_per_s").unwrap_or(0.0),
                    virtual_secs: extract_num(line, "virtual_secs").unwrap_or(0.0),
                });
            }
        }
    }
    runs
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_owned())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
