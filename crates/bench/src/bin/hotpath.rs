//! Wall-clock hot-path benchmark (`cargo run --release -p efind-bench --bin hotpath`).
//!
//! Unlike the figure benches — which report *virtual* SimTime — this
//! harness measures real elapsed time of the framework hot paths over
//! three representative workloads:
//!
//! * `wordcount` — plain MapReduce: map emit, shuffle partition, sort,
//!   group, reduce (no index access at all).
//! * `scanjoin` — the reduce-side TPC-H LineItem ⋈ Orders join: DFS
//!   write, tagged shuffle, large reduce groups.
//! * `lookup_heavy` — the synthetic join under the cache strategy: one
//!   index lookup per record through `ChargedLookup`, the per-lookup
//!   counter/sketch path, and the lookup cache.
//! * `scheduler_throughput` — 36 small jobs from three weighted tenants
//!   through the armed multi-tenant executor: bounded admission,
//!   deficit-weighted grants, token-bucket charging, ledger mirroring.
//!
//! `--tenants` additionally records (never gates) `tenant_mix_injected`,
//! the contended serving mix with one tenant's chaos/corruption armed.
//!
//! Results append to `BENCH_hotpath.json` as one labeled run:
//! `{workload, wall_ms, wall_ms_min, peak_rss_kb, lookups_per_s,
//! virtual_secs}`. Each workload runs one *discarded warm-up* iteration
//! (one-time costs — allocator growth, lazy interning, page faults — are
//! not the steady-state hot path) followed by `--iters` timed iterations;
//! `wall_ms` is their mean and `wall_ms_min` the fastest single iteration
//! (the least-noise estimator on a shared machine). `virtual_secs` is the
//! *virtual* makespan — it must be bit-identical across hot-path rewrites
//! (real-time optimizations must never move the simulated clock).
//!
//! `--check` re-measures every base workload (warm-up + 5 iterations,
//! re-measured up to twice more if over limit, to ride out load spikes)
//! and exits nonzero if any fresh `wall_ms_min` lands more than 25% above
//! the *best historical mean* of that workload — the criterion-style
//! regression gate wired into `scripts/ci.sh`. The gate strengthens
//! monotonically: every faster run recorded to the JSON lowers the bound.
//!
//! `--quiet-profile` runs the three base workloads with all three
//! injection layers *configured but quiet*: a seeded fault plan with zero
//! rates, a seeded chaos plan with zero kills, and a seeded corruption
//! plan with zero rates. Under the quiet-path monomorphization these must
//! cost the same as the plain runs (and produce bit-identical virtual
//! observables), so `--check --quiet-profile` gates them against the same
//! plain-run baselines.

use std::time::Instant;

use efind::{EFindConfig, EFindRuntime, Mode, Strategy};
use efind_cluster::{ChaosPlan, Cluster, CorruptionPlan, SimTime};
use efind_cluster::{IndexRateLimit, SimDuration, TenancyConfig, TenantSpec};
use efind_common::{Datum, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_mapreduce::{mapper_fn, reducer_fn, run_job, run_tenant_mix, JobConf, Runner, TenantJob};
use efind_workloads::scanjoin::{run_scan_join, run_scan_join_with};
use efind_workloads::synthetic::{self, SyntheticConfig};
use efind_workloads::tpch::{self, TpchConfig};

/// Wall-clock regression tolerance for `--check` (fraction over baseline).
const CHECK_TOLERANCE: f64 = 0.25;

/// Seed of the configured-but-quiet plans `--quiet-profile` installs.
/// Pinned so CI runs are reproducible; the value never matters because a
/// quiet plan draws nothing.
const QUIET_SEED: u64 = 0xEF1D_0007;

/// One measured workload.
#[derive(Clone, Debug)]
struct WorkloadResult {
    workload: String,
    /// Mean wall-clock over the timed iterations (warm-up discarded).
    wall_ms: f64,
    /// Fastest single timed iteration — what `--check` gates on.
    wall_ms_min: f64,
    peak_rss_kb: u64,
    lookups_per_s: f64,
    virtual_secs: f64,
}

/// One labeled benchmark run (a row group in the JSON trajectory).
#[derive(Clone, Debug)]
struct BenchRun {
    label: String,
    iters: usize,
    results: Vec<WorkloadResult>,
}

fn main() {
    let mut label = String::from("run");
    let mut iters = 5usize;
    let mut out_path = String::from("BENCH_hotpath.json");
    let mut check = false;
    let mut faults = false;
    let mut tenants = false;
    let mut quiet_profile = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--label" => {
                label = args
                    .next()
                    .unwrap_or_else(|| usage("--label needs a value"))
            }
            "--iters" => {
                iters = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters needs a number"))
            }
            "--out" => out_path = args.next().unwrap_or_else(|| usage("--out needs a path")),
            "--check" => check = true,
            "--faults" => faults = true,
            "--tenants" => tenants = true,
            "--quiet-profile" => quiet_profile = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }

    if check {
        std::process::exit(run_check(&out_path, quiet_profile));
    }

    let run = measure_all(&label, iters.max(1), faults, tenants, quiet_profile);
    print_table(&run);
    let mut runs = parse_runs(&std::fs::read_to_string(&out_path).unwrap_or_default());
    runs.push(run);
    let json = render_json(&runs);
    if let Err(e) = std::fs::write(&out_path, json) {
        eprintln!("hotpath: cannot write {out_path}: {e}");
        std::process::exit(2);
    }
    println!("appended run to {out_path}");
}

fn usage(msg: &str) -> ! {
    eprintln!("hotpath: {msg}");
    eprintln!(
        "usage: hotpath [--label NAME] [--iters N] [--out PATH] [--check] [--faults] \
         [--tenants] [--quiet-profile]"
    );
    std::process::exit(2)
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

fn measure_all(
    label: &str,
    iters: usize,
    faults: bool,
    tenants: bool,
    quiet_profile: bool,
) -> BenchRun {
    let mut results = vec![
        measure("wordcount", iters, || bench_wordcount(quiet_profile)),
        measure("scanjoin", iters, bench_scanjoin(quiet_profile)),
        measure("lookup_heavy", iters, || bench_lookup_heavy(quiet_profile)),
        measure(
            "scheduler_throughput",
            iters,
            bench_scheduler_throughput(quiet_profile),
        ),
    ];
    if faults {
        // Recorded only, never gated: `run_check` skips workloads absent
        // from the committed baseline, so the faulty scenario's wall
        // clock is tracked without failing CI on its (retry-dominated)
        // variance.
        results.push(measure(
            "lookup_heavy_faulty",
            iters,
            bench_lookup_heavy_faulty,
        ));
        results.push(measure(
            "lookup_heavy_nodecrash",
            iters,
            bench_lookup_heavy_nodecrash,
        ));
        results.push(measure(
            "lookup_heavy_corrupt",
            iters,
            bench_lookup_heavy_corrupt,
        ));
        results.push(measure(
            "lookup_heavy_partition",
            iters,
            bench_lookup_heavy_partition,
        ));
    }
    if tenants {
        // Recorded only, never gated: one tenant of the mix carries armed
        // chaos + corruption and a saturating index demand, so the wall
        // clock is dominated by recovery-path variance.
        results.push(measure(
            "tenant_mix_injected",
            iters,
            bench_tenant_mix_injected(),
        ));
    }
    BenchRun {
        label: label.to_owned(),
        iters,
        results,
    }
}

/// Runs one discarded warm-up iteration, then times `iters` runs of a
/// workload, recording the mean (`wall_ms`) and the fastest iteration
/// (`wall_ms_min`). The returned tuple from the workload closure is
/// `(lookup keys served, virtual seconds)`.
fn measure(name: &str, iters: usize, mut body: impl FnMut() -> (u64, f64)) -> WorkloadResult {
    // Warm-up: first-run one-time costs (allocator growth, lazy intern
    // tables, page faults) are not the hot path under measurement.
    let _ = body();
    let mut walls = Vec::with_capacity(iters);
    let mut lookups = 0u64;
    let mut virtual_secs = 0.0f64;
    for _ in 0..iters {
        let t0 = Instant::now();
        let (n, vs) = body();
        walls.push(t0.elapsed().as_secs_f64() * 1e3);
        lookups = n;
        virtual_secs = vs;
    }
    let wall_ms = walls.iter().sum::<f64>() / walls.len() as f64;
    let wall_ms_min = walls.iter().copied().fold(f64::INFINITY, f64::min);
    WorkloadResult {
        workload: name.to_owned(),
        wall_ms,
        wall_ms_min,
        peak_rss_kb: peak_rss_kb(),
        lookups_per_s: if wall_ms > 0.0 {
            lookups as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
        virtual_secs,
    }
}

/// Peak resident set size (VmHWM) in kB; 0 where /proc is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Plain wordcount: 120k words, 48 chunks, 8 reducers. Setup (input
/// generation, DFS write) is untimed; only the job run is measured.
/// Under `--quiet-profile` the runner carries seeded-but-quiet chaos and
/// corruption plans, which must cost nothing.
fn bench_wordcount(quiet_profile: bool) -> (u64, f64) {
    const VOCAB: [&str; 24] = [
        "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "pack", "my", "box",
        "with", "five", "dozen", "liquor", "jugs", "how", "vexingly", "daft", "zebras", "judge",
        "sphinx", "of", "quartz",
    ];
    let cluster = Cluster::builder()
        .nodes(8)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let mut dfs = Dfs::new(
        cluster.clone(),
        DfsConfig {
            chunk_size_bytes: 1 << 20,
            replication: 2,
            seed: 9,
        },
    );
    let records: Vec<Record> = (0..120_000usize)
        .map(|i| Record::new(i as i64, VOCAB[(i * 7919) % VOCAB.len()]))
        .collect();
    dfs.write_file_with_chunks("input", records, 48);
    let conf = JobConf::new("wordcount", "input", "out")
        .add_mapper(mapper_fn(|rec, out, _| {
            out.collect(Record::new(rec.value.clone(), 1i64));
        }))
        .with_reducer(
            reducer_fn(|key, values, out, _| {
                let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                out.collect(Record::new(key, total));
            }),
            8,
        );
    let res = if quiet_profile {
        Runner::with_chaos(&cluster, &mut dfs, ChaosPlan::new(QUIET_SEED))
            .with_corruption(CorruptionPlan::new(QUIET_SEED))
            .run(&conf, SimTime::ZERO)
    } else {
        run_job(&cluster, &mut dfs, &conf)
    }
    .expect("wordcount failed");
    (0, res.stats.makespan().as_secs_f64())
}

/// Reduce-side TPC-H join; the generated tables are shared across
/// iterations, the timed section includes the tagged-input DFS write the
/// scan join performs itself.
fn bench_scanjoin(quiet_profile: bool) -> impl FnMut() -> (u64, f64) {
    let data = tpch::generate(&TpchConfig {
        scale: 0.01,
        chunks: 40,
        seed: 3,
        ..TpchConfig::default()
    });
    let cluster = Cluster::edbt_testbed();
    move || {
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        let (t, joined) = if quiet_profile {
            run_scan_join_with(
                &cluster,
                &mut dfs,
                &data,
                2_500,
                40,
                ChaosPlan::new(QUIET_SEED),
                CorruptionPlan::new(QUIET_SEED),
            )
        } else {
            run_scan_join(&cluster, &mut dfs, &data, 2_500, 40)
        }
        .expect("scan join failed");
        assert!(joined > 0, "scan join joined nothing");
        (0, t.as_secs_f64())
    }
}

/// The lookup-heavy synthetic join under the cache strategy: 24k records,
/// Θ = 10 duplicate keys, small payloads so the per-lookup framework path
/// (counters, sketches, cache, charging) dominates. `lookups_per_s`
/// reports requested keys (`nik`) per wall-clock second. Under
/// `--quiet-profile` all three injection layers carry seeded-but-quiet
/// plans (zero rates, zero kills, no timeout), which must cost nothing.
fn bench_lookup_heavy(quiet_profile: bool) -> (u64, f64) {
    if quiet_profile {
        run_lookup_heavy(
            efind::FaultConfig::disabled().with_plan(efind::FaultPlan::new(QUIET_SEED)),
            ChaosPlan::new(QUIET_SEED),
            CorruptionPlan::new(QUIET_SEED),
        )
    } else {
        run_lookup_heavy(
            efind::FaultConfig::disabled(),
            ChaosPlan::none(),
            CorruptionPlan::none(),
        )
    }
}

/// `lookup_heavy` with the fault layer armed at a 5% mixed fault rate:
/// the same join, now exercising the per-attempt fault draw, the retry
/// loop, and the fault counters on every lookup. Enabled by `--faults`.
fn bench_lookup_heavy_faulty() -> (u64, f64) {
    use efind_cluster::SimDuration;
    let mut faults = efind::FaultConfig::disabled().with_plan(
        efind::FaultPlan::new(0xEF1D_0001)
            .failures(0.03)
            .timeouts(0.01)
            .slowdowns(0.01, 4.0),
    );
    faults.retry = efind::RetryPolicy::bounded(
        16,
        SimDuration::from_micros(50),
        SimDuration::from_millis(5),
    );
    faults.timeout = Some(SimDuration::from_millis(50));
    run_lookup_heavy(
        faults,
        efind_cluster::ChaosPlan::none(),
        efind_cluster::CorruptionPlan::none(),
    )
}

/// `lookup_heavy` with two seeded node crashes landing mid-job (the
/// virtual makespan is ~188 ms; the deaths draw from [25 ms, 115 ms)):
/// exercises lost-output recompute waves, shuffle-fetch retries, and DFS
/// re-replication on the wall clock. Enabled by `--faults`, recorded
/// only — `run_check` skips it.
fn bench_lookup_heavy_nodecrash() -> (u64, f64) {
    use efind_cluster::{ChaosPlan, SimDuration, SimTime};
    let chaos = ChaosPlan::seeded(
        0xEF1D_0002,
        Cluster::edbt_testbed().num_nodes(),
        2,
        SimTime::ZERO + SimDuration::from_millis(25),
        SimDuration::from_millis(90),
    );
    run_lookup_heavy(
        efind::FaultConfig::disabled(),
        chaos,
        efind_cluster::CorruptionPlan::none(),
    )
}

/// `lookup_heavy` with the corruption plan armed on every surface at low
/// rates: CRC verification on each chunk read, shuffle fetch, cache hit,
/// and index response, plus the repair paths the detections trigger.
/// Enabled by `--faults`, recorded only — `run_check` skips it.
fn bench_lookup_heavy_corrupt() -> (u64, f64) {
    let corruption = efind_cluster::CorruptionPlan::new(0xEF1D_0004)
        .chunks(0.02)
        .shuffle(0.05)
        .cache(0.05)
        .responses(0.02);
    run_lookup_heavy(
        efind::FaultConfig::disabled(),
        efind_cluster::ChaosPlan::none(),
        corruption,
    )
}

/// `lookup_heavy` under a gray failure: two seeded transient partitions
/// landing mid-job (healing inside the run) with hedged index lookups
/// armed at a hair-trigger threshold — exercises the partition visibility
/// checks, the suspicion/refutation ledger, fetch failover, and the
/// per-lookup hedge race on the wall clock. Enabled by `--faults`,
/// recorded only — `run_check` skips it.
fn bench_lookup_heavy_partition() -> (u64, f64) {
    use efind_cluster::{DetectorConfig, PartitionPlan};
    let netsplit = PartitionPlan::seeded(
        0xEF1D_0005,
        Cluster::edbt_testbed().num_nodes(),
        2,
        SimTime::ZERO + SimDuration::from_millis(25),
        SimDuration::from_millis(90),
    );
    let config = EFindConfig {
        netsplit,
        detector: DetectorConfig::default(),
        hedge: efind::HedgeConfig {
            seed: 0xEF1D_0006,
            threshold: Some(SimDuration::from_micros(2)),
            policy: efind::HedgePolicy::ChargeWinner,
        },
        ..EFindConfig::default()
    };
    run_lookup_heavy_with(config)
}

/// Multi-tenant scheduler throughput: 36 small wordcount jobs from three
/// weighted tenants pushed through the armed `run_tenant_mix` executor —
/// bounded admission, deficit-weighted grants, per-index token-bucket
/// charging, and the ledger/counter mirror. `lookups_per_s` reports
/// schedule-log decisions per wall-clock second. Part of the gated base
/// set: the admission/grant machinery is a real-time hot path once mixes
/// reach hundreds of jobs. Under `--quiet-profile` every job additionally
/// carries seeded-but-quiet chaos and corruption plans.
fn bench_scheduler_throughput(quiet_profile: bool) -> impl FnMut() -> (u64, f64) {
    const VOCAB: [&str; 8] = [
        "the", "quick", "fox", "jumps", "over", "lazy", "dog", "pack",
    ];
    let cluster = Cluster::builder()
        .nodes(4)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let records: Vec<Record> = (0..400usize)
        .map(|i| Record::new(i as i64, VOCAB[(i * 7) % VOCAB.len()]))
        .collect();
    move || {
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 1 << 12,
                replication: 2,
                seed: 9,
            },
        );
        dfs.write_file("input", records.clone());
        let cfg = TenancyConfig::none()
            .tenant(
                TenantSpec::new("alpha")
                    .weight(3)
                    .max_queued(24)
                    .max_running(2),
            )
            .tenant(
                TenantSpec::new("beta")
                    .weight(2)
                    .max_queued(24)
                    .max_running(2),
            )
            .tenant(
                TenantSpec::new("gamma")
                    .weight(1)
                    .max_queued(24)
                    .max_running(2),
            )
            .queue_capacity(64)
            .max_concurrent(2)
            .rate_limit(IndexRateLimit::new("idx", 50_000.0, 1_000.0))
            .degrade_threshold(SimDuration::from_millis(5));
        let tenants = ["alpha", "beta", "gamma"];
        let jobs: Vec<TenantJob> = (0..36usize)
            .map(|i| {
                let conf = JobConf::new(format!("j{i}"), "input", format!("j{i}.out"))
                    .add_mapper(mapper_fn(|rec, out, _| {
                        out.collect(Record::new(rec.value.clone(), 1i64));
                    }))
                    .with_reducer(
                        reducer_fn(|key, values, out, _| {
                            let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                            out.collect(Record::new(key, total));
                        }),
                        2,
                    );
                let mut job = TenantJob::new(
                    tenants[i % tenants.len()],
                    SimTime::ZERO + SimDuration::from_micros(i as u64),
                    conf,
                )
                .cost_hint(1 + (i % 3) as u64)
                .demand("idx", 100);
                if quiet_profile {
                    job = job
                        .with_chaos(ChaosPlan::new(QUIET_SEED))
                        .with_corruption(CorruptionPlan::new(QUIET_SEED));
                }
                job
            })
            .collect();
        let mix = run_tenant_mix(&cluster, &mut dfs, &cfg, jobs).expect("tenant mix failed");
        assert!(
            mix.jobs.iter().all(|j| j.rejected.is_none()),
            "scheduler bench mix must admit every job"
        );
        (mix.log.len() as u64, mix.makespan.as_secs_f64())
    }
}

/// The contended serving mix with injections armed (enabled by
/// `--tenants`, recorded only — `run_check` skips it): one tenant's jobs
/// carry a seeded node-kill chaos plan plus chunk corruption, and a tight
/// rate limit pushes the other tenant's demand through the throttle and
/// degrade paths.
fn bench_tenant_mix_injected() -> impl FnMut() -> (u64, f64) {
    const VOCAB: [&str; 8] = [
        "the", "quick", "fox", "jumps", "over", "lazy", "dog", "pack",
    ];
    let cluster = Cluster::builder()
        .nodes(4)
        .map_slots(2)
        .reduce_slots(2)
        .build();
    let records: Vec<Record> = (0..400usize)
        .map(|i| Record::new(i as i64, VOCAB[(i * 7) % VOCAB.len()]))
        .collect();
    move || {
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 1 << 12,
                replication: 2,
                seed: 9,
            },
        );
        dfs.write_file("input", records.clone());
        let cfg = TenancyConfig::none()
            .tenant(
                TenantSpec::new("alpha")
                    .weight(2)
                    .max_queued(16)
                    .max_running(1),
            )
            .tenant(
                TenantSpec::new("beta")
                    .weight(1)
                    .max_queued(16)
                    .max_running(1),
            )
            .queue_capacity(32)
            .max_concurrent(2)
            .rate_limit(IndexRateLimit::new("idx", 500.0, 50.0))
            .degrade_threshold(SimDuration::from_micros(100));
        let jobs: Vec<TenantJob> = (0..16usize)
            .map(|i| {
                let conf = JobConf::new(format!("t{i}"), "input", format!("t{i}.out"))
                    .add_mapper(mapper_fn(|rec, out, _| {
                        out.collect(Record::new(rec.value.clone(), 1i64));
                    }))
                    .with_reducer(
                        reducer_fn(|key, values, out, _| {
                            let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                            out.collect(Record::new(key, total));
                        }),
                        2,
                    );
                let mut job = TenantJob::new(
                    if i % 2 == 0 { "alpha" } else { "beta" },
                    SimTime::ZERO + SimDuration::from_micros(i as u64),
                    conf,
                )
                .demand("idx", 400);
                if i % 4 == 1 {
                    job = job
                        .with_chaos(
                            ChaosPlan::new(0xEF1D_0009)
                                .kill(efind_cluster::NodeId(2), SimTime::ZERO),
                        )
                        .with_corruption(CorruptionPlan::new(0xC0FF_EE09).chunks(0.05));
                }
                job
            })
            .collect();
        let mix = run_tenant_mix(&cluster, &mut dfs, &cfg, jobs).expect("tenant mix failed");
        (mix.log.len() as u64, mix.makespan.as_secs_f64())
    }
}

fn run_lookup_heavy(
    faults: efind::FaultConfig,
    chaos: efind_cluster::ChaosPlan,
    corruption: efind_cluster::CorruptionPlan,
) -> (u64, f64) {
    run_lookup_heavy_with(EFindConfig {
        faults,
        chaos,
        corruption,
        ..EFindConfig::default()
    })
}

fn run_lookup_heavy_with(efind_config: EFindConfig) -> (u64, f64) {
    let config = SyntheticConfig {
        num_records: 24_000,
        key_space: 2_400,
        record_pad: 16,
        index_value_size: 64,
        chunks: 48,
        ..SyntheticConfig::default()
    };
    let mut s = synthetic::scenario(&config);
    let mut rt = EFindRuntime::with_config(&s.cluster, &mut s.dfs, efind_config);
    let res = rt
        .run(&s.ijob, Mode::Uniform(Strategy::Cache))
        .expect("synthetic join failed");
    let served: i64 = res
        .jobs
        .iter()
        .map(|j| j.counters.get("efind.synjoin.0.nik"))
        .sum();
    (served.max(0) as u64, res.total_time.as_secs_f64())
}

// ---------------------------------------------------------------------
// Regression check
// ---------------------------------------------------------------------

/// Best historical wall-clock for `workload` across every recorded run:
/// the minimum of each run's **mean** (`wall_ms`). The mean is the right
/// baseline statistic here: a run's `wall_ms_min` is an order statistic
/// that only ever ratchets down (one lucky iteration on an idle box sets
/// a record no loaded CI box can reproduce), while the best run's mean is
/// a stable location estimate of the fastest configuration — and a real
/// regression shifts min and mean together, so the gate loses no teeth.
/// `None` when no run ever measured the workload.
fn best_historical(runs: &[BenchRun], workload: &str) -> Option<(f64, String)> {
    runs.iter()
        .filter_map(|r| {
            r.results
                .iter()
                .find(|b| b.workload == workload)
                .map(|b| (b.wall_ms, r.label.clone()))
        })
        .filter(|(w, _)| *w > 0.0)
        .min_by(|a, b| a.0.total_cmp(&b.0))
}

fn run_check(out_path: &str, quiet_profile: bool) -> i32 {
    let Ok(text) = std::fs::read_to_string(out_path) else {
        eprintln!("hotpath --check: no baseline file {out_path}");
        return 2;
    };
    let runs = parse_runs(&text);
    if runs.is_empty() {
        eprintln!("hotpath --check: {out_path} contains no runs");
        return 2;
    }
    println!(
        "checking{} fresh min vs best historical mean per workload ({} runs on file), tolerance {:.0}%",
        if quiet_profile {
            " (quiet profile)"
        } else {
            ""
        },
        runs.len(),
        CHECK_TOLERANCE * 100.0
    );
    // A single iteration is too noisy to gate on: warm up, then gate the
    // best of 5 against the best historical mean. On a shared single-core
    // box a whole batch can land inside a load spike (e.g. right after
    // CI's release-mode test suites), so an over-limit result is
    // re-measured — up to twice, after a short settle pause, keeping each
    // workload's best min across batches. A real regression fails every
    // batch; a spike clears.
    let over = |results: &[WorkloadResult]| {
        results.iter().any(|now| {
            best_historical(&runs, &now.workload)
                .is_some_and(|(best, _)| now.wall_ms_min > best * (1.0 + CHECK_TOLERANCE))
        })
    };
    let mut fresh = measure_all("check", 5, false, false, quiet_profile);
    for retry in 1..=2 {
        if !over(&fresh.results) {
            break;
        }
        println!("  over limit; re-measuring (attempt {})", retry + 1);
        std::thread::sleep(std::time::Duration::from_secs(2));
        let again = measure_all("check", 5, false, false, quiet_profile);
        for (have, new) in fresh.results.iter_mut().zip(again.results) {
            if new.wall_ms_min < have.wall_ms_min {
                *have = new;
            }
        }
    }
    let mut failed = false;
    for now in &fresh.results {
        let Some((best, from)) = best_historical(&runs, &now.workload) else {
            println!(
                "  {:<14} {:>9.1} ms  (no baseline, skipped)",
                now.workload, now.wall_ms_min
            );
            continue;
        };
        let limit = best * (1.0 + CHECK_TOLERANCE);
        let ok = now.wall_ms_min <= limit;
        println!(
            "  {:<14} min {:>8.1} ms vs best mean {:>8.1} ms [{}] (limit {:>8.1})  {}",
            now.workload,
            now.wall_ms_min,
            best,
            from,
            limit,
            if ok { "ok" } else { "REGRESSED" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!(
            "hotpath --check: wall-clock regression over {:.0}% detected",
            CHECK_TOLERANCE * 100.0
        );
        1
    } else {
        0
    }
}

fn print_table(run: &BenchRun) {
    println!(
        "hotpath run \"{}\" ({} iters after warm-up, mean / min wall-clock):",
        run.label, run.iters
    );
    for r in &run.results {
        println!(
            "  {:<14} {:>9.1} ms (min {:>8.1})   rss {:>8} kB   {:>12.0} lookups/s   \
             virtual {:.6} s",
            r.workload, r.wall_ms, r.wall_ms_min, r.peak_rss_kb, r.lookups_per_s, r.virtual_secs
        );
    }
}

// ---------------------------------------------------------------------
// JSON (hand-rolled: the workspace vendors no serde; the format keeps one
// result object per line so parsing stays a line scan)
// ---------------------------------------------------------------------

fn render_json(runs: &[BenchRun]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"hotpath\",\n  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{ \"label\": \"{}\", \"iters\": {}, \"results\": [",
            run.label, run.iters
        );
        for (j, r) in run.results.iter().enumerate() {
            let _ = writeln!(
                s,
                "      {{ \"workload\": \"{}\", \"wall_ms\": {:.3}, \"wall_ms_min\": {:.3}, \
                 \"peak_rss_kb\": {}, \"lookups_per_s\": {:.1}, \"virtual_secs\": {:.9} }}{}",
                r.workload,
                r.wall_ms,
                r.wall_ms_min,
                r.peak_rss_kb,
                r.lookups_per_s,
                r.virtual_secs,
                if j + 1 == run.results.len() { "" } else { "," }
            );
        }
        let _ = writeln!(s, "    ] }}{}", if i + 1 == runs.len() { "" } else { "," });
    }
    s.push_str("  ]\n}\n");
    s
}

fn parse_runs(text: &str) -> Vec<BenchRun> {
    let mut runs: Vec<BenchRun> = Vec::new();
    for line in text.lines() {
        if let Some(label) = extract_str(line, "label") {
            runs.push(BenchRun {
                label,
                iters: extract_num(line, "iters").unwrap_or(1.0) as usize,
                results: Vec::new(),
            });
        } else if let Some(workload) = extract_str(line, "workload") {
            if let Some(run) = runs.last_mut() {
                let wall_ms = extract_num(line, "wall_ms").unwrap_or(0.0);
                run.results.push(WorkloadResult {
                    workload,
                    wall_ms,
                    // Runs from before the warm-up / min split carry no
                    // wall_ms_min; their recorded median stands in.
                    wall_ms_min: extract_num(line, "wall_ms_min").unwrap_or(wall_ms),
                    peak_rss_kb: extract_num(line, "peak_rss_kb").unwrap_or(0.0) as u64,
                    lookups_per_s: extract_num(line, "lookups_per_s").unwrap_or(0.0),
                    virtual_secs: extract_num(line, "virtual_secs").unwrap_or(0.0),
                });
            }
        }
    }
    runs
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')?;
    Some(line[start..start + end].to_owned())
}

fn extract_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
