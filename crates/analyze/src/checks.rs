//! The analysis passes: every `EFxxx` check over a [`PlanModel`].

use crate::diag::{DiagCode, Diagnostic, Report, Span};
use crate::model::{
    CacheModel, FaultModel, HedgeModel, IntegrityModel, MeasuredStatsModel, OperatorModel,
    PartitionModel, PlanModel, StrategyKind, TenancyModel,
};

use efind_common::FxHashSet;

/// Relative tolerance for float comparisons over cost estimates.
const EPS: f64 = 1e-9;

/// Runs every check over the model and returns the combined report.
///
/// Checks are independent; one malformed operator produces every
/// diagnostic it earns, not just the first.
pub fn analyze(model: &PlanModel) -> Report {
    let mut report = Report::new();
    check_duplicate_names(model, &mut report);
    for (pos, op) in model.operators.iter().enumerate() {
        check_arity(pos, op, &mut report);
        check_tail_placement(pos, op, model, &mut report);
        check_strategy_order(pos, op, &mut report);
        check_strategy_capabilities(pos, op, &mut report);
        check_key_kinds(pos, op, &mut report);
        check_partition_schemes(pos, op, &mut report);
        check_cost_sanity(pos, op, &mut report);
        check_cache_floor(pos, op, &mut report);
        check_s_min_monotonicity(pos, op, &mut report);
        check_determinism(pos, op, &mut report);
        check_enumeration_agreement(pos, op, &mut report);
        check_volatile_pinning(pos, op, &mut report);
        check_stats_tokens(pos, op, &mut report);
        check_cost_monotonicity(pos, op, &mut report);
    }
    if let Some(faults) = &model.faults {
        check_fault_config(faults, &mut report);
    }
    if let Some(integrity) = &model.integrity {
        check_integrity_config(model, integrity, &mut report);
    }
    check_injection_conflicts(model, &mut report);
    if let Some(cache) = &model.cache {
        check_cache_coherence(model, cache, &mut report);
    }
    check_quiet_plan_purity(model, &mut report);
    for m in &model.measured {
        check_measured_stats(model, m, &mut report);
    }
    if let Some(tenancy) = &model.tenancy {
        check_tenancy_config(model, tenancy, &mut report);
    }
    if let Some(partition) = &model.partition {
        check_partition_config(partition, &mut report);
    }
    if let Some(hedge) = &model.hedge {
        check_hedge_config(model, hedge, &mut report);
    }
    report
}

/// EF002: operator names must be unique within one job.
fn check_duplicate_names(model: &PlanModel, report: &mut Report) {
    let mut seen = FxHashSet::default();
    for (pos, op) in model.operators.iter().enumerate() {
        if !seen.insert(op.name.as_str()) {
            report.push(
                Diagnostic::error(
                    DiagCode::EF002,
                    Span::operator(pos, &op.name),
                    format!("duplicate operator name `{}`", op.name),
                )
                .with_hint("rename one of the operators; statistics and plans are keyed by name"),
            );
        }
    }
}

/// EF001: bound accessors and plan choices must both match the declared
/// arity, and every choice must target a distinct, in-range slot.
fn check_arity(pos: usize, op: &OperatorModel, report: &mut Report) {
    let span = || Span::operator(pos, &op.name);
    if op.indices.len() != op.declared_arity {
        report.push(
            Diagnostic::error(
                DiagCode::EF001,
                span(),
                format!(
                    "operator declares {} indices but {} accessors are bound",
                    op.declared_arity,
                    op.indices.len()
                ),
            )
            .with_hint("bind exactly one accessor per declared index with add_index"),
        );
    }
    if op.choices.len() != op.indices.len() {
        report.push(
            Diagnostic::error(
                DiagCode::EF001,
                span(),
                format!(
                    "plan covers {} of {} bound indices",
                    op.choices.len(),
                    op.indices.len()
                ),
            )
            .with_hint("every bound index needs exactly one access choice"),
        );
    }
    let mut seen = FxHashSet::default();
    for choice in &op.choices {
        if choice.slot >= op.indices.len() {
            report.push(
                Diagnostic::error(
                    DiagCode::EF001,
                    span(),
                    format!(
                        "plan references index slot {} but only {} indices are bound",
                        choice.slot,
                        op.indices.len()
                    ),
                )
                .with_hint("plan slots must index into the operator's declaration order"),
            );
        } else if !seen.insert(choice.slot) {
            report.push(
                Diagnostic::error(
                    DiagCode::EF001,
                    Span::index(pos, &op.name, &op.indices[choice.slot].name),
                    format!("index slot {} is accessed more than once", choice.slot),
                )
                .with_hint("a plan accesses each index exactly once"),
            );
        }
    }
}

/// EF003: tail operators need a reduce phase to attach to.
fn check_tail_placement(pos: usize, op: &OperatorModel, model: &PlanModel, report: &mut Report) {
    if matches!(op.placement, crate::model::PlacementKind::Tail) && !model.has_reduce {
        report.push(
            Diagnostic::error(
                DiagCode::EF003,
                Span::operator(pos, &op.name),
                "tail operator in a map-only job",
            )
            .with_hint("add a reduce phase or move the operator to head/body placement"),
        );
    }
}

/// EF004 (Property 4): shuffle-strategy accesses must precede
/// baseline/cache accesses — a shuffle after a record-wise lookup would
/// re-shuffle data that already carries lookup results, which the cost
/// model proves is never optimal and the compiler never exploits.
fn check_strategy_order(pos: usize, op: &OperatorModel, report: &mut Report) {
    let mut non_shuffle_at: Option<usize> = None;
    for (i, choice) in op.choices.iter().enumerate() {
        if choice.strategy.is_shuffle() {
            if let Some(prev) = non_shuffle_at {
                let idx_name = op
                    .indices
                    .get(choice.slot)
                    .map(|m| m.name.as_str())
                    .unwrap_or("?");
                report.push(
                    Diagnostic::error(
                        DiagCode::EF004,
                        Span::index(pos, &op.name, idx_name),
                        format!(
                            "{} access at plan position {i} follows a non-shuffle access \
                             at position {prev} (Property 4 violation)",
                            choice.strategy.label(),
                        ),
                    )
                    .with_hint("reorder the plan so shuffle-strategy indices come first"),
                );
            }
        } else {
            non_shuffle_at.get_or_insert(i);
        }
    }
}

/// EF005/EF006: a strategy may only be chosen for an index that supports
/// it — index locality needs a partition scheme, shuffles need a
/// shuffleable index.
fn check_strategy_capabilities(pos: usize, op: &OperatorModel, report: &mut Report) {
    for choice in &op.choices {
        let Some(idx) = op.indices.get(choice.slot) else {
            continue; // out-of-range slots already reported as EF001
        };
        let span = || Span::index(pos, &op.name, &idx.name);
        if choice.strategy == StrategyKind::IndexLocality && !idx.has_partition_scheme {
            report.push(
                Diagnostic::error(
                    DiagCode::EF005,
                    span(),
                    "index locality chosen for an index with no partition scheme",
                )
                .with_hint(
                    "expose a PartitionScheme from the accessor or fall back to re-partitioning",
                ),
            );
        }
        if choice.strategy.is_shuffle() && !idx.shuffleable {
            report.push(
                Diagnostic::error(
                    DiagCode::EF006,
                    span(),
                    format!(
                        "{} strategy chosen for a non-shuffleable index",
                        choice.strategy.label()
                    ),
                )
                .with_hint("non-shuffleable indices support only baseline/cache access"),
            );
        }
    }
}

/// EF007: the key kind an operator emits for a slot must be compatible
/// with what the accessor accepts.
fn check_key_kinds(pos: usize, op: &OperatorModel, report: &mut Report) {
    for (slot, idx) in op.indices.iter().enumerate() {
        let emitted = op.lookup_key_kinds.get(slot).copied().unwrap_or_default();
        if !emitted.compatible(idx.key_kind) {
            report.push(
                Diagnostic::error(
                    DiagCode::EF007,
                    Span::index(pos, &op.name, &idx.name),
                    format!(
                        "operator emits {} lookup keys but the accessor expects {}",
                        emitted.label(),
                        idx.key_kind.label()
                    ),
                )
                .with_hint("fix preProcess's key extraction or the accessor's declared key kind"),
            );
        }
    }
}

/// EF008: a partition scheme with zero partitions cannot route anything.
fn check_partition_schemes(pos: usize, op: &OperatorModel, report: &mut Report) {
    for idx in &op.indices {
        if idx.has_partition_scheme && idx.partitions == 0 {
            report.push(
                Diagnostic::error(
                    DiagCode::EF008,
                    Span::index(pos, &op.name, &idx.name),
                    "degenerate partition scheme: zero partitions",
                )
                .with_hint("num_partitions must be at least 1"),
            );
        }
    }
}

/// EF009: every cost estimate must be a non-negative finite number.
fn check_cost_sanity(pos: usize, op: &OperatorModel, report: &mut Report) {
    let bad = |v: f64| v.is_nan() || v < -EPS;
    let span = || Span::operator(pos, &op.name);
    if bad(op.est_cost_secs) {
        report.push(
            Diagnostic::error(
                DiagCode::EF009,
                span(),
                format!("operator plan cost {} is negative or NaN", op.est_cost_secs),
            )
            .with_hint("cost estimates are sums of non-negative terms; check the statistics"),
        );
    }
    for choice in &op.choices {
        if bad(choice.est_cost_secs) {
            let idx_name = op
                .indices
                .get(choice.slot)
                .map(|m| m.name.as_str())
                .unwrap_or("?");
            report.push(
                Diagnostic::error(
                    DiagCode::EF009,
                    Span::index(pos, &op.name, idx_name),
                    format!(
                        "{} access cost {} is negative or NaN",
                        choice.strategy.label(),
                        choice.est_cost_secs
                    ),
                )
                .with_hint("cost estimates are sums of non-negative terms; check the statistics"),
            );
        }
    }
    if let Some(costs) = &op.costs {
        for (what, v) in [
            ("N1", costs.n1),
            ("FullEnumerate cost", costs.full_est_secs),
            ("k-Repart cost", costs.krepart_est_secs),
        ] {
            if bad(v) {
                report.push(
                    Diagnostic::error(
                        DiagCode::EF009,
                        span(),
                        format!("{what} {v} is negative or NaN"),
                    )
                    .with_hint("statistics and derived costs must be non-negative"),
                );
            }
        }
        for seq in [&costs.s_min_by_position, &costs.carried_by_position] {
            for &v in seq {
                if bad(v) {
                    report.push(
                        Diagnostic::error(
                            DiagCode::EF009,
                            span(),
                            format!("size term {v} is negative or NaN"),
                        )
                        .with_hint("record and result sizes must be non-negative"),
                    );
                }
            }
        }
    }
}

/// EF010: a cache-strategy estimate can never be below the probe floor
/// `N1 · Nik · T_cache` — every key pays at least one cache probe (Eq. 2).
fn check_cache_floor(pos: usize, op: &OperatorModel, report: &mut Report) {
    let Some(costs) = &op.costs else { return };
    for choice in &op.choices {
        if choice.strategy != StrategyKind::Cache || choice.est_cost_secs <= 0.0 {
            continue; // forced plans carry est 0.0 — nothing to sanity-check
        }
        let Some(idx) = op.indices.get(choice.slot) else {
            continue;
        };
        let Some(nik) = idx.nik else { continue };
        let floor = costs.n1 * nik * costs.t_cache_secs;
        if choice.est_cost_secs < floor * (1.0 - 1e-6) {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF010,
                    Span::index(pos, &op.name, &idx.name),
                    format!(
                        "cache estimate {:.6}s is below the T_cache probe floor {:.6}s",
                        choice.est_cost_secs, floor
                    ),
                )
                .with_hint("every requested key pays at least one cache probe (Eq. 2)"),
            );
        }
    }
}

/// EF011: `S_min` is a minimum over a set that includes the carried size,
/// so it can never exceed it; and the carried size only grows along the
/// access order (each access appends `Nik · Siv` of results). A violation
/// means the statistics feeding the cost model are inconsistent.
fn check_s_min_monotonicity(pos: usize, op: &OperatorModel, report: &mut Report) {
    let Some(costs) = &op.costs else { return };
    let span = || Span::operator(pos, &op.name);
    for (i, (&s_min, &carried)) in costs
        .s_min_by_position
        .iter()
        .zip(&costs.carried_by_position)
        .enumerate()
    {
        if s_min > carried * (1.0 + 1e-6) + EPS {
            report.push(
                Diagnostic::error(
                    DiagCode::EF011,
                    span(),
                    format!(
                        "S_min {s_min:.1}B exceeds the carried size {carried:.1}B \
                         at plan position {i}"
                    ),
                )
                .with_hint("S_min is a minimum including the carried size; check the statistics"),
            );
        }
    }
    for (i, w) in costs.carried_by_position.windows(2).enumerate() {
        if w[1] < w[0] * (1.0 - 1e-6) - EPS {
            report.push(
                Diagnostic::error(
                    DiagCode::EF011,
                    span(),
                    format!(
                        "carried size shrinks from {:.1}B to {:.1}B between plan \
                         positions {i} and {}",
                        w[0],
                        w[1],
                        i + 1
                    ),
                )
                .with_hint("each access appends Nik·Siv of lookup results; sizes cannot decrease"),
            );
        }
    }
}

/// EF012: the adaptive runtime reuses completed-wave outputs across a
/// mid-job plan change, which is only sound when every lookup is a pure
/// function of its key (§3.2). Non-deterministic accessors statically
/// disable that result reuse.
fn check_determinism(pos: usize, op: &OperatorModel, report: &mut Report) {
    for idx in &op.indices {
        if !idx.deterministic {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF012,
                    Span::index(pos, &op.name, &idx.name),
                    format!(
                        "accessor `{}` is non-deterministic: adaptive re-optimization \
                         result-reuse is disabled for this job",
                        idx.name
                    ),
                )
                .with_hint(
                    "Dynamic mode will run the static baseline plan; make lookup \
                     idempotent to re-enable adaptive optimization",
                ),
            );
        }
    }
}

/// EF013: FullEnumerate and k-Repart disagreeing on plan cost means the
/// cheap algorithm's prefix bound is cutting off the optimum — worth
/// surfacing so the user can raise `k` or switch to full enumeration.
fn check_enumeration_agreement(pos: usize, op: &OperatorModel, report: &mut Report) {
    let Some(costs) = &op.costs else { return };
    let scale = costs.full_est_secs.abs().max(1.0);
    if (costs.full_est_secs - costs.krepart_est_secs).abs() > 1e-6 * scale {
        report.push(
            Diagnostic::warning(
                DiagCode::EF013,
                Span::operator(pos, &op.name),
                format!(
                    "FullEnumerate ({:.4}s) and {}-Repart ({:.4}s) pick plans of \
                     different cost",
                    costs.full_est_secs, costs.krepart_k, costs.krepart_est_secs
                ),
            )
            .with_hint("raise k or use Enumeration::Full for this operator count"),
        );
    }
}

/// EF014: a volatile (non-idempotent) operator must run the baseline
/// strategy on every index — caching or deduplicating its lookups would
/// change results.
fn check_volatile_pinning(pos: usize, op: &OperatorModel, report: &mut Report) {
    if !op.volatile {
        return;
    }
    for choice in &op.choices {
        if choice.strategy != StrategyKind::Baseline {
            let idx_name = op
                .indices
                .get(choice.slot)
                .map(|m| m.name.as_str())
                .unwrap_or("?");
            report.push(
                Diagnostic::error(
                    DiagCode::EF014,
                    Span::index(pos, &op.name, idx_name),
                    format!(
                        "volatile operator planned with the {} strategy",
                        choice.strategy.label()
                    ),
                )
                .with_hint("volatile operators are pinned to baseline in every mode (§3.2)"),
            );
        }
    }
}

/// EF015/EF016: fault-tolerance configuration sanity. Runs only when the
/// fault layer is armed; a job without faults never sees these codes.
fn check_fault_config(f: &FaultModel, report: &mut Report) {
    if f.timeout_nanos == Some(0) {
        report.push(
            Diagnostic::error(
                DiagCode::EF015,
                Span::job(),
                "per-index timeout is zero: every lookup attempt times out before it can answer",
            )
            .with_hint(
                "set the timeout above the slowest expected serve + transfer time, \
                 or drop it to disable timeout enforcement",
            ),
        );
    }
    if f.fail_job_on_exhaustion && f.max_retries == 0 {
        report.push(
            Diagnostic::warning(
                DiagCode::EF016,
                Span::job(),
                "FailJob miss policy with zero retries: one transient failure fails the whole job",
            )
            .with_hint("allow at least one retry, or degrade misses instead of failing the job"),
        );
    }
    if f.backoff_base_nanos > f.max_backoff_nanos {
        report.push(
            Diagnostic::warning(
                DiagCode::EF016,
                Span::job(),
                format!(
                    "backoff base ({} ns) exceeds its cap ({} ns): every pause clamps to the cap",
                    f.backoff_base_nanos, f.max_backoff_nanos
                ),
            )
            .with_hint("raise max_backoff or lower the base so the exponential schedule applies"),
        );
    }
    if f.breaker_threshold < 1.0 && f.breaker_min_samples <= u64::from(f.max_retries) {
        report.push(
            Diagnostic::warning(
                DiagCode::EF016,
                Span::job(),
                format!(
                    "breaker min-samples ({}) within one key's retry budget ({}): a single \
                     black-holed key can open the breaker and degrade the whole task",
                    f.breaker_min_samples, f.max_retries
                ),
            )
            .with_hint("raise breaker_min_samples above max_retries"),
        );
    }
}

/// EF017/EF018: data-integrity configuration sanity. Runs only when a
/// corruption plan is armed; a job without injected corruption never sees
/// these codes.
fn check_integrity_config(model: &PlanModel, integ: &IntegrityModel, report: &mut Report) {
    if integ.corrupts_chunks && integ.dfs_replication <= 1 {
        report.push(
            Diagnostic::error(
                DiagCode::EF017,
                Span::job(),
                format!(
                    "chunk corruption is injected but DFS replication is {}: the first \
                     corrupted chunk has no intact replica and the job fails by construction",
                    integ.dfs_replication
                ),
            )
            .with_hint(
                "raise the DFS replication factor to at least 2 so a corrupt replica \
                 can be quarantined and re-read, or stop corrupting chunks",
            ),
        );
    }
    if integ.corrupts_cache && !integ.verification {
        let cache_in_use = model
            .operators
            .iter()
            .any(|op| op.choices.iter().any(|c| c.strategy == StrategyKind::Cache));
        if cache_in_use {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF018,
                    Span::job(),
                    "lookup-cache corruption is injected with checksum verification \
                     disabled: poisoned cache entries would be served undetected",
                )
                .with_hint(
                    "keep verification enabled (drop without_verification) so poisoned \
                     entries are invalidated and re-fetched, or stop corrupting the cache",
                ),
            );
        }
    }
}

/// EF019 (part 1): every `statsx` token feeding Eqs. 1–4 must sit in its
/// legal range. Out-of-range tokens poison every downstream estimate, so
/// they are errors, not warnings.
fn check_stats_tokens(pos: usize, op: &OperatorModel, report: &mut Report) {
    for idx in &op.indices {
        let Some(s) = &idx.stats else { continue };
        let span = || Span::index(pos, &op.name, &idx.name);
        let mut bad = |what: &str, value: f64, legal: &str| {
            report.push(
                Diagnostic::error(
                    DiagCode::EF019,
                    span(),
                    format!("statistics token {what} = {value} is outside {legal}"),
                )
                .with_hint(
                    "the statsx extraction produced an impossible token; the Eq. 1-4 \
                     estimates built from it are meaningless",
                ),
            );
        };
        for (what, v) in [
            ("Sik", s.sik_bytes),
            ("Siv", s.siv_bytes),
            ("Tj", s.tj_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                bad(what, v, "[0, inf)");
            }
        }
        if !(0.0..=1.0 + EPS).contains(&s.miss_ratio) || s.miss_ratio.is_nan() {
            bad("miss", s.miss_ratio, "[0, 1]");
        }
        if !s.theta.is_finite() || s.theta < 1.0 - EPS {
            bad("theta", s.theta, "[1, inf)");
        }
        if !(0.0..1.0).contains(&s.failure_rate) || s.failure_rate.is_nan() {
            bad("fail", s.failure_rate, "[0, 1)");
        }
        if let Some(nik) = idx.nik {
            if !nik.is_finite() || nik < 0.0 {
                bad("Nik", nik, "[0, inf)");
            }
        }
    }
}

/// EF019 (part 2): the Eq. 1–4 estimates are sums of terms linear in the
/// input cardinality `N1`, so re-planning with `N1` doubled can never
/// produce a *cheaper* best plan. A decrease means the cost model and the
/// statistics disagree about what `N1` multiplies.
fn check_cost_monotonicity(pos: usize, op: &OperatorModel, report: &mut Report) {
    let Some(costs) = &op.costs else { return };
    let Some(doubled) = costs.est_at_double_n1_secs else {
        return;
    };
    if doubled < costs.full_est_secs * (1.0 - 1e-6) - EPS {
        report.push(
            Diagnostic::error(
                DiagCode::EF019,
                Span::operator(pos, &op.name),
                format!(
                    "best plan cost drops from {:.6}s to {:.6}s when N1 doubles: \
                     the estimate is not monotone in input cardinality",
                    costs.full_est_secs, doubled
                ),
            )
            .with_hint(
                "Eq. 1-4 are sums of non-negative terms linear in N1; a decreasing \
                 estimate means a term is subtracting input size",
            ),
        );
    }
}

/// EF023: measured statistics injected from the cross-job store must
/// satisfy the same invariants `EF019` enforces for `statsx` tokens —
/// every token in its legal range and the Eq. 1–4 best-plan estimate
/// monotone under the doubled-`N1` probe. Errors, not warnings: a store
/// entry that fails here would poison every warm-start plan built from
/// it, so the compile aborts and the caller falls back to estimates.
fn check_measured_stats(model: &PlanModel, m: &MeasuredStatsModel, report: &mut Report) {
    let pos = model
        .operators
        .iter()
        .position(|op| op.name == m.operator)
        .unwrap_or(0);
    let mut bad = |what: &str, value: f64, legal: &str| {
        report.push(
            Diagnostic::error(
                DiagCode::EF023,
                Span::operator(pos, &m.operator),
                format!("measured statistics token {what} = {value} is outside {legal}"),
            )
            .with_hint(
                "the cross-job store served an impossible token; the warm-start plan \
                 built from it is meaningless — fall back to estimates",
            ),
        );
    };
    if !m.n1.is_finite() || m.n1 < 0.0 {
        bad("N1", m.n1, "[0, inf)");
    }
    for &nik in &m.nik {
        if !nik.is_finite() || nik < 0.0 {
            bad("Nik", nik, "[0, inf)");
        }
    }
    for s in &m.indices {
        for (what, v) in [
            ("Sik", s.sik_bytes),
            ("Siv", s.siv_bytes),
            ("Tj", s.tj_secs),
        ] {
            if !v.is_finite() || v < 0.0 {
                bad(what, v, "[0, inf)");
            }
        }
        if !(0.0..=1.0 + EPS).contains(&s.miss_ratio) || s.miss_ratio.is_nan() {
            bad("miss", s.miss_ratio, "[0, 1]");
        }
        if !s.theta.is_finite() || s.theta < 1.0 - EPS {
            bad("theta", s.theta, "[1, inf)");
        }
        if !(0.0..1.0).contains(&s.failure_rate) || s.failure_rate.is_nan() {
            bad("fail", s.failure_rate, "[0, 1)");
        }
    }
    if m.est_at_double_n1_secs < m.full_est_secs * (1.0 - 1e-6) - EPS {
        report.push(
            Diagnostic::error(
                DiagCode::EF023,
                Span::operator(pos, &m.operator),
                format!(
                    "measured-stats plan cost drops from {:.6}s to {:.6}s when the \
                     recorded N1 doubles: the estimate is not monotone in input cardinality",
                    m.full_est_secs, m.est_at_double_n1_secs
                ),
            )
            .with_hint(
                "Eq. 1-4 are sums of non-negative terms linear in N1; a decreasing \
                 estimate means the stored history disagrees with the cost model",
            ),
        );
    }
}

/// EF020: conflicts *between* injection layers. Each layer alone is
/// checked by EF015–EF018; this check catches combinations that are
/// unsurvivable (chaos kills the whole cluster) or quietly exhaust the
/// recovery budget (kills plus corruption quarantines outrun the replica
/// count).
fn check_injection_conflicts(model: &PlanModel, report: &mut Report) {
    let Some(chaos) = &model.chaos else { return };
    if chaos.cluster_nodes > 0 && chaos.kill_events >= chaos.cluster_nodes {
        report.push(
            Diagnostic::error(
                DiagCode::EF020,
                Span::job(),
                format!(
                    "chaos plan kills {} nodes of a {}-node cluster: no node survives \
                     to finish any wave",
                    chaos.kill_events, chaos.cluster_nodes
                ),
            )
            .with_hint("keep at least one node alive; recovery needs somewhere to run"),
        );
    }
    if chaos.kill_events >= 1 && chaos.dfs_replication <= 1 {
        report.push(
            Diagnostic::warning(
                DiagCode::EF020,
                Span::job(),
                format!(
                    "node kills are scheduled with DFS replication {}: any chunk on a \
                     killed node is lost with no replica to recover from",
                    chaos.dfs_replication
                ),
            )
            .with_hint(
                "raise replication to at least 2, or accept that the run exercises \
                 the data-loss path by design",
            ),
        );
    }
    if let Some(integ) = &model.integrity {
        if integ.corrupts_chunks
            && chaos.dfs_replication > 1
            && chaos.kill_events + 1 >= chaos.dfs_replication
        {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF020,
                    Span::job(),
                    format!(
                        "{} node kills plus chunk corruption against replication {}: \
                         one quarantined replica plus the kills can exhaust every copy",
                        chaos.kill_events, chaos.dfs_replication
                    ),
                )
                .with_hint(
                    "keep replication above kill_events + 1 when combining chaos with \
                     chunk corruption, or the layers defeat each other's experiment",
                ),
            );
        }
    }
}

/// EF021: cache-config coherence. A plan that chose the cache strategy
/// based on Eq. 2 must actually get a usable cache at runtime.
fn check_cache_coherence(model: &PlanModel, cache: &CacheModel, report: &mut Report) {
    let cache_in_use = model
        .operators
        .iter()
        .any(|op| op.choices.iter().any(|c| c.strategy == StrategyKind::Cache));
    if cache.t_cache_secs.is_nan() || cache.t_cache_secs < 0.0 {
        report.push(
            Diagnostic::error(
                DiagCode::EF021,
                Span::job(),
                format!(
                    "cache probe time T_cache = {} is negative or NaN",
                    cache.t_cache_secs
                ),
            )
            .with_hint("T_cache is a physical time; it must be a finite non-negative number"),
        );
    }
    if !cache_in_use {
        return;
    }
    if cache.capacity == 0 {
        report.push(
            Diagnostic::error(
                DiagCode::EF021,
                Span::job(),
                "a cache-strategy plan is installed but the lookup cache holds zero \
                 entries: every probe misses and the plan degenerates to baseline \
                 plus pure overhead",
            )
            .with_hint("set cache_capacity to at least 1, or re-plan without the cache strategy"),
        );
    } else if cache.t_cache_secs == 0.0 {
        report.push(
            Diagnostic::warning(
                DiagCode::EF021,
                Span::job(),
                "cache strategy planned with T_cache = 0: probes are free and the \
                 Eq. 2 floor is degenerate, so the planner can never prefer baseline",
            )
            .with_hint("use a small positive T_cache so cache and baseline stay comparable"),
        );
    }
}

/// EF022: quiet-plan purity. The lowering only arms an injection layer
/// when its plan is non-quiet (`is_quiet()` short-circuits), so an armed
/// layer that injects *nothing* means a guard was bypassed: the run pays
/// injection bookkeeping and draws for a no-op experiment.
fn check_quiet_plan_purity(model: &PlanModel, report: &mut Report) {
    let quiet_hint = "quiet plans must short-circuit before arming the layer \
                      (is_quiet() guards in the lowering); drop the empty plan";
    if let Some(f) = &model.faults {
        if f.inject_failure_rate == 0.0
            && f.inject_timeout_rate == 0.0
            && f.inject_slowdown_rate == 0.0
        {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF022,
                    Span::job(),
                    "the fault layer is armed but its plan injects no failures, \
                     timeouts, or slowdowns",
                )
                .with_hint(quiet_hint),
            );
        }
    }
    if let Some(i) = &model.integrity {
        if !i.corrupts_chunks && !i.corrupts_cache {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF022,
                    Span::job(),
                    "the corruption layer is armed but its plan corrupts neither \
                     chunks nor cache entries",
                )
                .with_hint(quiet_hint),
            );
        }
    }
    if let Some(c) = &model.chaos {
        if c.kill_events == 0 {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF022,
                    Span::job(),
                    "the chaos layer is armed but its plan schedules zero node kills",
                )
                .with_hint(quiet_hint),
            );
        }
    }
    if let Some(p) = &model.partition {
        if p.partition_events == 0 && p.slow_links == 0 {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF022,
                    Span::job(),
                    "the partition layer is armed but its plan schedules no cuts \
                     or link slowdowns",
                )
                .with_hint(quiet_hint),
            );
        }
    }
}

/// EF025: gray-failure configuration sanity. Partitions cut visibility,
/// never state, so a cut that heals is always survivable — but a cut that
/// *never* heals permanently removes its nodes from the reachable replica
/// budget, and a cut isolating the whole cluster leaves no side to finish
/// the job. The detector is also checked: suspicion below the heartbeat
/// interval means every node is suspected on its first silent beat, so
/// false positives dominate and re-placement churns.
fn check_partition_config(partition: &PartitionModel, report: &mut Report) {
    if partition.cluster_nodes > 0 && partition.permanently_isolated >= partition.cluster_nodes {
        report.push(
            Diagnostic::error(
                DiagCode::EF025,
                Span::job(),
                format!(
                    "an unhealed partition isolates all {} nodes of the cluster: \
                     no reachable side is left to finish the job",
                    partition.cluster_nodes
                ),
            )
            .with_hint("give the cut a heal time, or leave at least one node reachable"),
        );
    }
    if partition.permanently_isolated >= 1 && partition.dfs_replication <= 1 {
        report.push(
            Diagnostic::warning(
                DiagCode::EF025,
                Span::job(),
                format!(
                    "{} node(s) stay isolated forever with DFS replication {}: any \
                     chunk hosted behind the cut has no reachable replica and the \
                     job fails fast with a partition error",
                    partition.permanently_isolated, partition.dfs_replication
                ),
            )
            .with_hint(
                "raise replication to at least 2, heal the cut, or accept that the \
                 run exercises the fail-fast path by design",
            ),
        );
    }
    if partition.heartbeat_interval_nanos >= partition.suspicion_nanos {
        report.push(
            Diagnostic::warning(
                DiagCode::EF025,
                Span::job(),
                format!(
                    "detector heartbeat interval ({} ns) is at or above the suspicion \
                     threshold ({} ns): every silent beat immediately suspects the \
                     node, so false positives dominate and tasks churn between nodes",
                    partition.heartbeat_interval_nanos, partition.suspicion_nanos
                ),
            )
            .with_hint("keep the suspicion threshold at 2-3 heartbeat intervals"),
        );
    }
}

/// EF026: pointless hedging. A hedged lookup races a backup against a
/// *different* replica or partition-side of the index; an accessor that
/// exposes only one side (a single-partition scheme, or no scheme over an
/// unreplicated DFS) makes the backup race the very service it is hedging
/// against — it can never answer sooner and only adds virtual cost under
/// the charge-both policy.
fn check_hedge_config(model: &PlanModel, hedge: &HedgeModel, report: &mut Report) {
    for (pos, op) in model.operators.iter().enumerate() {
        for idx in &op.indices {
            let sides = if idx.has_partition_scheme {
                idx.partitions
            } else {
                hedge.dfs_replication
            };
            if sides <= 1 {
                let what = if idx.has_partition_scheme {
                    "exposes a single partition-side".to_string()
                } else {
                    format!(
                        "exposes no partition scheme and the DFS holds {} replica(s)",
                        hedge.dfs_replication
                    )
                };
                report.push(
                    Diagnostic::warning(
                        DiagCode::EF026,
                        Span::index(pos, &op.name, &idx.name),
                        format!(
                            "hedged lookups are armed but index `{}` {}: the backup \
                             races the same service and can only lose",
                            idx.name, what
                        ),
                    )
                    .with_hint(
                        "hedging needs a second replica or partition-side to race \
                         against; raise replication or disable hedging for this run",
                    ),
                );
            }
        }
    }
}

/// EF024: tenancy-config coherence. The multi-tenant scheduler is built
/// to reject deterministically rather than hang, but a configuration with
/// zero-slot quotas or degenerate weights rejects (or starves) *every*
/// job by construction — that is a config error, not a scheduling
/// outcome. Rate limits are softer: a bucket whose sustained rate plus
/// burst cannot cover the job's expected lookup demand within its own
/// estimated runtime likely starves the job it admits, so it warns.
fn check_tenancy_config(model: &PlanModel, tenancy: &TenancyModel, report: &mut Report) {
    let span = Span::job;
    // Tenant table: names must be usable as counter segments and unique;
    // quotas and weights must leave the tenant able to run something.
    let mut seen = FxHashSet::default();
    for t in &tenancy.tenants {
        if t.name.is_empty() || t.name.contains('.') {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "tenant name {:?} is not a legal counter segment \
                         (must be non-empty and dot-free)",
                        t.name
                    ),
                )
                .with_hint("tenant names become `efind.tenant.<name>.*` counter segments"),
            );
        }
        if !seen.insert(t.name.as_str()) {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!("duplicate tenant name {:?}", t.name),
                )
                .with_hint("each tenant must be declared exactly once"),
            );
        }
        if t.weight == 0 {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "tenant {:?} has deficit weight 0: it accrues no credit \
                         and can never win a grant",
                        t.name
                    ),
                )
                .with_hint("weights must be at least 1; starvation-freedom assumes it"),
            );
        }
        if t.max_running == 0 {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "tenant {:?} has max_running = 0: admitted jobs can never start",
                        t.name
                    ),
                )
                .with_hint("a zero-slot running quota turns every admission into a hang risk"),
            );
        }
        if t.max_queued == 0 {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "tenant {:?} has max_queued = 0: every submission is \
                         quota-rejected at the door",
                        t.name
                    ),
                )
                .with_hint("give each tenant at least one queue slot, or remove the tenant"),
            );
        }
        if t.cache_share.is_nan() || !(0.0..=1.0).contains(&t.cache_share) {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "tenant {:?} has cache share {} outside [0, 1]",
                        t.name, t.cache_share
                    ),
                )
                .with_hint("shares are fractions of the shared lookup-cache capacity"),
            );
        }
    }
    let share_sum: f64 = tenancy
        .tenants
        .iter()
        .map(|t| t.cache_share.clamp(0.0, 1.0))
        .sum();
    if share_sum > 1.0 + EPS {
        report.push(
            Diagnostic::warning(
                DiagCode::EF024,
                span(),
                format!(
                    "tenant cache shares sum to {share_sum:.3}: the shared cache \
                     is oversubscribed and reservations cannot all be honored"
                ),
            )
            .with_hint("keep the share sum at or below 1.0"),
        );
    }
    // Global admission bounds: zero capacity rejects or stalls everything.
    if tenancy.queue_capacity == 0 {
        report.push(
            Diagnostic::error(
                DiagCode::EF024,
                span(),
                "admission queue capacity is 0: every submission that cannot start \
                 immediately is rejected",
            )
            .with_hint("size the queue for the expected burst, or at least 1"),
        );
    }
    if tenancy.max_concurrent == 0 {
        report.push(
            Diagnostic::error(
                DiagCode::EF024,
                span(),
                "max_concurrent is 0: no job can ever be granted a slot",
            )
            .with_hint("allow at least one concurrent job"),
        );
    }
    // Job tag: an unknown tenant is rejected at submit time — catch it
    // at analysis time instead.
    if let Some(job_tenant) = &tenancy.job_tenant {
        if !tenancy.tenants.is_empty() && !tenancy.tenants.iter().any(|t| &t.name == job_tenant) {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "job is tagged with tenant {job_tenant:?}, which is not \
                         declared in the tenancy configuration"
                    ),
                )
                .with_hint("declare the tenant, or drop the job's tenant tag"),
            );
        }
    }
    // QoS knobs are virtual times; negative or NaN values are meaningless.
    for (what, v) in [
        ("degrade_threshold", tenancy.degrade_threshold_secs),
        ("scan_fallback_cost", tenancy.scan_fallback_cost_secs),
    ] {
        if v.is_nan() || v < 0.0 {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!("QoS parameter {what} = {v} is negative or NaN"),
                )
                .with_hint("QoS thresholds are virtual durations; use finite non-negative values"),
            );
        }
    }
    // Rate limits: malformed buckets are errors; a well-formed bucket
    // that cannot cover the job's expected lookup demand over its own
    // estimated runtime is a starvation warning.
    for rl in &tenancy.rate_limits {
        if rl.rate_per_sec.is_nan() || rl.rate_per_sec < 0.0 || rl.burst.is_nan() || rl.burst < 0.0
        {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "rate limit for index {:?} has negative or NaN parameters \
                         (rate = {}, burst = {})",
                        rl.index, rl.rate_per_sec, rl.burst
                    ),
                )
                .with_hint("token-bucket rate and burst must be finite and non-negative"),
            );
            continue;
        }
        if rl.rate_per_sec == 0.0 && rl.burst == 0.0 {
            report.push(
                Diagnostic::error(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "rate limit for index {:?} has zero rate and zero burst: \
                         no lookup can ever be charged",
                        rl.index
                    ),
                )
                .with_hint("give the bucket a positive rate or burst, or remove the limit"),
            );
            continue;
        }
        // Expected lookups against this index: Σ over operators of
        // N1 × Nik for every bound accessor matching the limited name.
        let mut demand = 0.0;
        let mut runtime_secs = 0.0;
        for op in &model.operators {
            let Some(costs) = &op.costs else { continue };
            runtime_secs += op.est_cost_secs.max(0.0);
            for idx in &op.indices {
                if idx.name == rl.index {
                    if let Some(nik) = idx.nik {
                        demand += costs.n1.max(0.0) * nik.max(0.0);
                    }
                }
            }
        }
        if demand <= 0.0 {
            continue;
        }
        let supply = if runtime_secs > 0.0 {
            rl.rate_per_sec * runtime_secs + rl.burst
        } else {
            // No runtime estimate: only the burst is guaranteed without
            // paying queueing delay.
            rl.burst
        };
        if supply + EPS < demand {
            report.push(
                Diagnostic::warning(
                    DiagCode::EF024,
                    span(),
                    format!(
                        "rate limit for index {:?} supplies ~{supply:.0} lookups over \
                         the job's estimated runtime but the plan expects ~{demand:.0}: \
                         the job will spend most of its time throttled or degraded to scan",
                        rl.index
                    ),
                )
                .with_hint(
                    "raise the rate or burst, or accept that this job is expected to \
                     run degraded under contention",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::model::testutil::{index, job, operator};
    use crate::model::{ChoiceModel, OperatorCosts, PlacementKind};
    use efind_common::KeyKind;

    fn codes(report: &Report) -> Vec<DiagCode> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn costs() -> OperatorCosts {
        OperatorCosts {
            n1: 1000.0,
            t_cache_secs: 1.0e-6,
            full_est_secs: 1.0,
            krepart_est_secs: 1.0,
            krepart_k: 2,
            s_min_by_position: vec![100.0],
            carried_by_position: vec![200.0],
            est_at_double_n1_secs: None,
        }
    }

    #[test]
    fn clean_plan_produces_no_diagnostics() {
        let report = analyze(&job(vec![operator("a", StrategyKind::Cache)]));
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef001_arity_mismatch() {
        let mut op = operator("a", StrategyKind::Baseline);
        op.declared_arity = 2; // one accessor bound
        let report = analyze(&job(vec![op]));
        assert!(report.has_code(DiagCode::EF001));
        assert!(report.has_errors());

        let mut op = operator("a", StrategyKind::Baseline);
        op.choices.clear(); // plan covers 0 of 1 indices
        assert!(analyze(&job(vec![op])).has_code(DiagCode::EF001));

        let mut op = operator("a", StrategyKind::Baseline);
        op.choices[0].slot = 3; // out of range
        assert!(analyze(&job(vec![op])).has_code(DiagCode::EF001));

        let mut op = operator("a", StrategyKind::Baseline);
        op.choices.push(op.choices[0]); // duplicate slot
        assert!(analyze(&job(vec![op])).has_code(DiagCode::EF001));
    }

    #[test]
    fn ef002_duplicate_names() {
        let report = analyze(&job(vec![
            operator("same", StrategyKind::Baseline),
            operator("same", StrategyKind::Cache),
        ]));
        assert_eq!(codes(&report), vec![DiagCode::EF002]);
        assert!(report.has_errors());
    }

    #[test]
    fn ef003_tail_without_reduce() {
        let mut op = operator("t", StrategyKind::Baseline);
        op.placement = PlacementKind::Tail;
        let mut model = job(vec![op]);
        model.has_reduce = false;
        let report = analyze(&model);
        assert_eq!(codes(&report), vec![DiagCode::EF003]);
        // With a reduce phase the same operator is fine.
        let mut op = operator("t", StrategyKind::Baseline);
        op.placement = PlacementKind::Tail;
        assert!(analyze(&job(vec![op])).is_clean());
    }

    #[test]
    fn ef004_shuffle_after_non_shuffle() {
        let mut op = operator("a", StrategyKind::Cache);
        op.declared_arity = 2;
        op.indices.push(index("idx2"));
        op.choices.push(ChoiceModel {
            slot: 1,
            strategy: StrategyKind::Repartition,
            est_cost_secs: 0.0,
        });
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF004]);

        // The legal order — shuffle first — is clean.
        let mut op = operator("a", StrategyKind::Repartition);
        op.declared_arity = 2;
        op.indices.push(index("idx2"));
        op.choices.push(ChoiceModel {
            slot: 1,
            strategy: StrategyKind::Cache,
            est_cost_secs: 0.0,
        });
        assert!(analyze(&job(vec![op])).is_clean());
    }

    #[test]
    fn ef005_index_locality_without_scheme() {
        let report = analyze(&job(vec![operator("a", StrategyKind::IndexLocality)]));
        assert_eq!(codes(&report), vec![DiagCode::EF005]);

        let mut op = operator("a", StrategyKind::IndexLocality);
        op.indices[0].has_partition_scheme = true;
        op.indices[0].partitions = 8;
        assert!(analyze(&job(vec![op])).is_clean());
    }

    #[test]
    fn ef006_shuffle_on_non_shuffleable_index() {
        let mut op = operator("a", StrategyKind::Repartition);
        op.indices[0].shuffleable = false;
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF006]);
    }

    #[test]
    fn ef007_key_kind_mismatch() {
        let mut op = operator("a", StrategyKind::Baseline);
        op.lookup_key_kinds = vec![KeyKind::Text];
        op.indices[0].key_kind = KeyKind::Int;
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF007]);

        // Any on either side is compatible.
        let mut op = operator("a", StrategyKind::Baseline);
        op.lookup_key_kinds = vec![KeyKind::Any];
        op.indices[0].key_kind = KeyKind::Int;
        assert!(analyze(&job(vec![op])).is_clean());
    }

    #[test]
    fn ef008_degenerate_partition_scheme() {
        let mut op = operator("a", StrategyKind::Baseline);
        op.indices[0].has_partition_scheme = true;
        op.indices[0].partitions = 0;
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF008]);
    }

    #[test]
    fn ef009_negative_cost() {
        let mut op = operator("a", StrategyKind::Cache);
        op.choices[0].est_cost_secs = -1.0;
        let report = analyze(&job(vec![op]));
        assert!(report.has_code(DiagCode::EF009));
        assert!(report.has_errors());

        let mut op = operator("a", StrategyKind::Cache);
        op.est_cost_secs = f64::NAN;
        assert!(analyze(&job(vec![op])).has_code(DiagCode::EF009));
    }

    #[test]
    fn ef010_cache_below_probe_floor() {
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].nik = Some(2.0);
        op.choices[0].est_cost_secs = 1.0e-9; // below 1000 * 2 * 1e-6 = 2e-3
        op.costs = Some(costs());
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF010]);
        assert!(!report.has_errors(), "EF010 is a warning");

        // Estimates at/above the floor are fine.
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].nik = Some(2.0);
        op.choices[0].est_cost_secs = 5.0e-3;
        op.costs = Some(costs());
        assert!(analyze(&job(vec![op])).is_clean());
    }

    #[test]
    fn ef011_s_min_monotonicity() {
        let mut op = operator("a", StrategyKind::Cache);
        let mut c = costs();
        c.s_min_by_position = vec![500.0]; // exceeds carried 200.0
        op.costs = Some(c);
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF011]);

        let mut op = operator("a", StrategyKind::Cache);
        let mut c = costs();
        c.s_min_by_position = vec![100.0, 100.0];
        c.carried_by_position = vec![200.0, 150.0]; // carried shrinks
        op.costs = Some(c);
        assert!(analyze(&job(vec![op])).has_code(DiagCode::EF011));
    }

    #[test]
    fn ef012_non_deterministic_accessor_warns() {
        let mut op = operator("a", StrategyKind::Baseline);
        op.indices[0].deterministic = false;
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF012]);
        assert!(!report.has_errors(), "EF012 is a warning, not an error");
        assert!(report.is_passing());
    }

    #[test]
    fn ef013_enumeration_disagreement() {
        let mut op = operator("a", StrategyKind::Cache);
        let mut c = costs();
        c.full_est_secs = 1.0;
        c.krepart_est_secs = 1.5;
        op.costs = Some(c);
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF013]);
        assert!(!report.has_errors());
    }

    #[test]
    fn ef014_volatile_with_non_baseline_plan() {
        let mut op = operator("a", StrategyKind::Cache);
        op.volatile = true;
        let report = analyze(&job(vec![op]));
        assert_eq!(codes(&report), vec![DiagCode::EF014]);
        assert!(report.has_errors());

        let mut op = operator("a", StrategyKind::Baseline);
        op.volatile = true;
        assert!(analyze(&job(vec![op])).is_clean());
    }

    #[test]
    fn multiple_findings_accumulate() {
        let mut op = operator("a", StrategyKind::IndexLocality);
        op.volatile = true; // EF005 (no scheme) + EF014 (volatile non-baseline)
        let report = analyze(&job(vec![op]));
        assert!(report.has_code(DiagCode::EF005));
        assert!(report.has_code(DiagCode::EF014));
        assert_eq!(report.errors().count(), 2);
    }

    #[test]
    fn into_result_carries_error_summary() {
        let mut op = operator("a", StrategyKind::Repartition);
        op.indices[0].shuffleable = false;
        let err = analyze(&job(vec![op])).into_result().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("EF006"), "{msg}");
    }

    #[test]
    fn warnings_do_not_fail_into_result() {
        let mut op = operator("a", StrategyKind::Baseline);
        op.indices[0].deterministic = false;
        let report = analyze(&job(vec![op])).into_result().unwrap();
        assert_eq!(report.warnings().count(), 1);
        assert_eq!(
            report.warnings().next().unwrap().severity,
            Severity::Warning
        );
    }

    #[test]
    fn benign_fault_config_is_clean() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.faults = Some(crate::model::testutil::faults());
        let report = analyze(&model);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef015_zero_timeout_is_an_error() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut f = crate::model::testutil::faults();
        f.timeout_nanos = Some(0);
        model.faults = Some(f);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF015));
        assert!(report.has_errors());
    }

    #[test]
    fn ef016_fail_job_without_retries_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut f = crate::model::testutil::faults();
        f.fail_job_on_exhaustion = true;
        f.max_retries = 0;
        model.faults = Some(f);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF016));
        assert!(!report.has_errors());
    }

    #[test]
    fn ef016_backoff_base_above_cap_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut f = crate::model::testutil::faults();
        f.backoff_base_nanos = 1_000_000_000;
        f.max_backoff_nanos = 1_000_000;
        model.faults = Some(f);
        assert!(analyze(&model).has_code(DiagCode::EF016));
    }

    #[test]
    fn ef016_hair_trigger_breaker_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut f = crate::model::testutil::faults();
        f.breaker_min_samples = 2; // within one key's retry budget (3)
        model.faults = Some(f);
        assert!(analyze(&model).has_code(DiagCode::EF016));

        // A disabled breaker (threshold 1.0) never trips the warning.
        let mut f = crate::model::testutil::faults();
        f.breaker_min_samples = 2;
        f.breaker_threshold = 1.0;
        model.faults = Some(f);
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn absent_fault_model_skips_fault_checks() {
        let report = analyze(&job(vec![operator("a", StrategyKind::Cache)]));
        assert!(!report.has_code(DiagCode::EF015));
        assert!(!report.has_code(DiagCode::EF016));
    }

    #[test]
    fn benign_integrity_config_is_clean() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.integrity = Some(crate::model::testutil::integrity());
        let report = analyze(&model);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef017_chunk_corruption_on_unreplicated_dfs_is_an_error() {
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        let mut i = crate::model::testutil::integrity();
        i.dfs_replication = 1;
        model.integrity = Some(i);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF017));
        assert!(report.has_errors());

        // Without chunk corruption, replication 1 is fine for EF017 (the
        // now-empty corruption plan earns EF022 instead).
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        let mut i = crate::model::testutil::integrity();
        i.dfs_replication = 1;
        i.corrupts_chunks = false;
        model.integrity = Some(i);
        assert!(!analyze(&model).has_code(DiagCode::EF017));
    }

    #[test]
    fn ef018_unverified_cache_corruption_warns_only_with_a_cache_plan() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut i = crate::model::testutil::integrity();
        i.corrupts_cache = true;
        i.verification = false;
        i.corrupts_chunks = false;
        model.integrity = Some(i);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF018));
        assert!(!report.has_errors(), "EF018 is a warning");

        // No cache strategy in the plan: nothing can be poisoned.
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        model.integrity = Some(i);
        assert!(analyze(&model).is_clean());

        // Verification enabled: poisoned entries are caught and re-fetched.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        i.verification = true;
        model.integrity = Some(i);
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn absent_integrity_model_skips_integrity_checks() {
        let report = analyze(&job(vec![operator("a", StrategyKind::Cache)]));
        assert!(!report.has_code(DiagCode::EF017));
        assert!(!report.has_code(DiagCode::EF018));
    }

    #[test]
    fn ef019_legal_stats_tokens_are_clean() {
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].nik = Some(2.0);
        op.indices[0].stats = Some(crate::model::testutil::index_stats());
        let report = analyze(&job(vec![op]));
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef019_out_of_range_stats_tokens_are_errors() {
        for mutate in [
            (|s: &mut crate::model::IndexStatsModel| s.miss_ratio = 1.5)
                as fn(&mut crate::model::IndexStatsModel),
            |s| s.miss_ratio = -0.1,
            |s| s.theta = 0.5,
            |s| s.failure_rate = 1.0,
            |s| s.sik_bytes = -1.0,
            |s| s.tj_secs = f64::NAN,
            |s| s.siv_bytes = f64::INFINITY,
        ] {
            let mut op = operator("a", StrategyKind::Cache);
            let mut s = crate::model::testutil::index_stats();
            mutate(&mut s);
            op.indices[0].stats = Some(s);
            let report = analyze(&job(vec![op]));
            assert!(report.has_code(DiagCode::EF019), "{}", report.to_text());
            assert!(report.has_errors());
        }
        // A NaN Nik alongside stats is also caught.
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].stats = Some(crate::model::testutil::index_stats());
        op.indices[0].nik = Some(f64::NAN);
        assert!(analyze(&job(vec![op])).has_code(DiagCode::EF019));
    }

    #[test]
    fn ef019_cost_must_be_monotone_in_n1() {
        let mut op = operator("a", StrategyKind::Cache);
        let mut c = costs();
        c.full_est_secs = 1.0;
        c.krepart_est_secs = 1.0;
        c.est_at_double_n1_secs = Some(0.4); // cheaper with twice the input
        op.costs = Some(c);
        let report = analyze(&job(vec![op]));
        assert!(report.has_code(DiagCode::EF019), "{}", report.to_text());
        assert!(report.has_errors());

        // A doubled estimate at or above the base cost is fine (equal is
        // legal: a plan may be dominated by N1-independent terms).
        let mut op = operator("a", StrategyKind::Cache);
        let mut c = costs();
        c.est_at_double_n1_secs = Some(1.0);
        op.costs = Some(c);
        assert!(analyze(&job(vec![op])).is_clean());
    }

    #[test]
    fn ef020_chaos_killing_every_node_is_an_error() {
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        let mut c = crate::model::testutil::chaos();
        c.kill_events = 8; // == cluster_nodes
        model.chaos = Some(c);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF020));
        assert!(report.has_errors());

        // One kill on an 8-node replicated cluster is a benign experiment.
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        model.chaos = Some(crate::model::testutil::chaos());
        assert!(analyze(&model).is_clean(), "{}", analyze(&model).to_text());
    }

    #[test]
    fn ef020_kills_at_replication_one_warn() {
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        let mut c = crate::model::testutil::chaos();
        c.dfs_replication = 1;
        model.chaos = Some(c);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF020));
        assert!(!report.has_errors(), "data-loss-by-design stays a warning");
    }

    #[test]
    fn ef020_kills_plus_corruption_exhaust_replicas() {
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        let mut c = crate::model::testutil::chaos();
        c.kill_events = 2;
        c.dfs_replication = 3; // 2 kills + 1 quarantine == 3 copies
        model.chaos = Some(c);
        model.integrity = Some(crate::model::testutil::integrity());
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF020), "{}", report.to_text());
        assert!(!report.has_errors());

        // With headroom (1 kill against replication 3) the combination is
        // clean.
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        model.chaos = Some(crate::model::testutil::chaos());
        model.integrity = Some(crate::model::testutil::integrity());
        assert!(analyze(&model).is_clean(), "{}", analyze(&model).to_text());
    }

    #[test]
    fn ef021_zero_capacity_cache_plan_is_an_error() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut c = crate::model::testutil::cache();
        c.capacity = 0;
        model.cache = Some(c);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF021));
        assert!(report.has_errors());

        // Zero capacity without any cache-strategy choice is harmless.
        let mut model = job(vec![operator("a", StrategyKind::Baseline)]);
        model.cache = Some(c);
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn ef021_negative_t_cache_is_an_error_and_zero_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut c = crate::model::testutil::cache();
        c.t_cache_secs = -1.0e-6;
        model.cache = Some(c);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF021));
        assert!(report.has_errors());

        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut c = crate::model::testutil::cache();
        c.t_cache_secs = 0.0;
        model.cache = Some(c);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF021));
        assert!(
            !report.has_errors(),
            "free probes are suspicious, not fatal"
        );

        // The benign config is clean.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.cache = Some(crate::model::testutil::cache());
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn ef022_armed_but_empty_layers_warn() {
        // Fault layer armed with all-zero injection rates.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut f = crate::model::testutil::faults();
        f.inject_failure_rate = 0.0;
        f.inject_timeout_rate = 0.0;
        f.inject_slowdown_rate = 0.0;
        model.faults = Some(f);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF022), "{}", report.to_text());
        assert!(!report.has_errors());

        // Corruption layer armed but corrupting nothing.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut i = crate::model::testutil::integrity();
        i.corrupts_chunks = false;
        i.corrupts_cache = false;
        model.integrity = Some(i);
        assert!(analyze(&model).has_code(DiagCode::EF022));

        // Chaos layer armed with zero kills.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut c = crate::model::testutil::chaos();
        c.kill_events = 0;
        model.chaos = Some(c);
        assert!(analyze(&model).has_code(DiagCode::EF022));
    }

    #[test]
    fn ef022_silent_on_genuinely_injecting_layers() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.faults = Some(crate::model::testutil::faults());
        model.integrity = Some(crate::model::testutil::integrity());
        model.chaos = Some(crate::model::testutil::chaos());
        model.cache = Some(crate::model::testutil::cache());
        let report = analyze(&model);
        assert!(!report.has_code(DiagCode::EF022), "{}", report.to_text());
        assert!(report.is_clean(), "{}", report.to_text());
    }

    fn measured(op: &str) -> crate::model::MeasuredStatsModel {
        crate::model::MeasuredStatsModel {
            operator: op.to_string(),
            n1: 1000.0,
            nik: vec![2.0],
            indices: vec![crate::model::testutil::index_stats()],
            full_est_secs: 1.0,
            est_at_double_n1_secs: 1.8,
        }
    }

    #[test]
    fn ef023_legal_measured_stats_are_clean() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.measured = vec![measured("a")];
        let report = analyze(&model);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef023_out_of_range_measured_tokens_are_errors() {
        for mutate in [
            (|m: &mut crate::model::MeasuredStatsModel| m.n1 = -1.0)
                as fn(&mut crate::model::MeasuredStatsModel),
            |m| m.n1 = f64::NAN,
            |m| m.nik[0] = -2.0,
            |m| m.nik[0] = f64::INFINITY,
            |m| m.indices[0].miss_ratio = 1.5,
            |m| m.indices[0].miss_ratio = -0.1,
            |m| m.indices[0].theta = 0.5,
            |m| m.indices[0].failure_rate = 1.0,
            |m| m.indices[0].sik_bytes = -1.0,
            |m| m.indices[0].siv_bytes = f64::INFINITY,
            |m| m.indices[0].tj_secs = f64::NAN,
        ] {
            let mut model = job(vec![operator("a", StrategyKind::Cache)]);
            let mut m = measured("a");
            mutate(&mut m);
            model.measured = vec![m];
            let report = analyze(&model);
            assert!(report.has_code(DiagCode::EF023), "{}", report.to_text());
            assert!(report.has_errors());
        }
    }

    #[test]
    fn ef023_measured_cost_must_be_monotone_in_n1() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut m = measured("a");
        m.est_at_double_n1_secs = 0.4; // cheaper with twice the recorded N1
        model.measured = vec![m];
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF023), "{}", report.to_text());
        assert!(report.has_errors());

        // Equal cost at doubled N1 is legal: the plan may be dominated by
        // N1-independent terms.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut m = measured("a");
        m.est_at_double_n1_secs = 1.0;
        model.measured = vec![m];
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn ef024_benign_tenancy_is_clean() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.tenancy = Some(crate::model::testutil::tenancy());
        let report = analyze(&model);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef024_zero_slot_quotas_and_degenerate_weights_are_errors() {
        type Mutate = fn(&mut crate::model::TenancyModel);
        for mutate in [
            (|t: &mut crate::model::TenancyModel| t.tenants[0].weight = 0) as Mutate,
            |t| t.tenants[0].max_running = 0,
            |t| t.tenants[1].max_queued = 0,
            |t| t.queue_capacity = 0,
            |t| t.max_concurrent = 0,
            |t| t.tenants[0].name = String::new(),
            |t| t.tenants[0].name = "alpha.prod".into(),
            |t| t.tenants[1].name = "alpha".into(),
            |t| t.tenants[0].cache_share = 1.5,
            |t| t.tenants[0].cache_share = f64::NAN,
            |t| t.degrade_threshold_secs = -1.0,
            |t| t.scan_fallback_cost_secs = f64::NAN,
            |t| t.job_tenant = Some("gamma".into()),
        ] {
            let mut model = job(vec![operator("a", StrategyKind::Cache)]);
            let mut tenancy = crate::model::testutil::tenancy();
            mutate(&mut tenancy);
            model.tenancy = Some(tenancy);
            let report = analyze(&model);
            assert!(report.has_code(DiagCode::EF024), "{}", report.to_text());
            assert!(report.has_errors(), "{}", report.to_text());
        }
    }

    #[test]
    fn ef024_oversubscribed_cache_shares_warn() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut tenancy = crate::model::testutil::tenancy();
        tenancy.tenants[0].cache_share = 0.8;
        tenancy.tenants[1].cache_share = 0.7;
        model.tenancy = Some(tenancy);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF024), "{}", report.to_text());
        assert!(
            !report.has_errors(),
            "oversubscription degrades, not breaks"
        );
    }

    #[test]
    fn ef024_malformed_rate_limits_are_errors() {
        type Mutate = fn(&mut crate::model::RateLimitModel);
        for mutate in [
            (|rl: &mut crate::model::RateLimitModel| rl.rate_per_sec = -1.0) as Mutate,
            |rl| rl.rate_per_sec = f64::NAN,
            |rl| rl.burst = -2.0,
            |rl| {
                rl.rate_per_sec = 0.0;
                rl.burst = 0.0;
            },
        ] {
            let mut model = job(vec![operator("a", StrategyKind::Cache)]);
            let mut tenancy = crate::model::testutil::tenancy();
            let mut rl = crate::model::RateLimitModel {
                index: "idx".into(),
                rate_per_sec: 100.0,
                burst: 10.0,
            };
            mutate(&mut rl);
            tenancy.rate_limits.push(rl);
            model.tenancy = Some(tenancy);
            let report = analyze(&model);
            assert!(report.has_code(DiagCode::EF024), "{}", report.to_text());
            assert!(report.has_errors(), "{}", report.to_text());
        }
    }

    #[test]
    fn ef024_rate_limit_below_expected_demand_warns() {
        // 1000 input records × 2 lookups/record = 2000 expected lookups
        // against `idx`, but the bucket supplies 10/s × 1s + 10 = 20.
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].nik = Some(2.0);
        op.choices[0].est_cost_secs = 5.0e-3; // above the EF010 probe floor
        op.est_cost_secs = 1.0;
        op.costs = Some(costs());
        let mut model = job(vec![op]);
        let mut tenancy = crate::model::testutil::tenancy();
        tenancy.rate_limits.push(crate::model::RateLimitModel {
            index: "idx".into(),
            rate_per_sec: 10.0,
            burst: 10.0,
        });
        model.tenancy = Some(tenancy);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF024), "{}", report.to_text());
        assert!(
            !report.has_errors(),
            "underprovisioning degrades, not breaks"
        );

        // A bucket that covers the demand is clean.
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].nik = Some(2.0);
        op.choices[0].est_cost_secs = 5.0e-3;
        op.est_cost_secs = 1.0;
        op.costs = Some(costs());
        let mut model = job(vec![op]);
        let mut tenancy = crate::model::testutil::tenancy();
        tenancy.rate_limits.push(crate::model::RateLimitModel {
            index: "idx".into(),
            rate_per_sec: 5000.0,
            burst: 100.0,
        });
        model.tenancy = Some(tenancy);
        let report = analyze(&model);
        assert!(report.is_clean(), "{}", report.to_text());

        // A limit on an index the plan never touches says nothing.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut tenancy = crate::model::testutil::tenancy();
        tenancy.rate_limits.push(crate::model::RateLimitModel {
            index: "other".into(),
            rate_per_sec: 0.001,
            burst: 0.0,
        });
        model.tenancy = Some(tenancy);
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn benign_partition_config_is_clean() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.partition = Some(crate::model::testutil::partition());
        let report = analyze(&model);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef025_unhealed_full_cluster_partition_is_an_error() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut p = crate::model::testutil::partition();
        p.permanently_isolated = p.cluster_nodes;
        model.partition = Some(p);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF025), "{}", report.to_text());
        assert!(report.has_errors());
    }

    #[test]
    fn ef025_permanent_isolation_on_unreplicated_dfs_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut p = crate::model::testutil::partition();
        p.permanently_isolated = 1;
        p.dfs_replication = 1;
        model.partition = Some(p);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF025), "{}", report.to_text());
        assert!(!report.has_errors(), "fail-fast by design is a warning");

        // The same permanent cut against a replicated DFS is clean: the
        // reachable side still holds a copy of every chunk.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut p = crate::model::testutil::partition();
        p.permanently_isolated = 1;
        model.partition = Some(p);
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn ef025_detector_interval_at_or_above_suspicion_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut p = crate::model::testutil::partition();
        p.heartbeat_interval_nanos = 2_000_000;
        p.suspicion_nanos = 2_000_000;
        model.partition = Some(p);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF025), "{}", report.to_text());
        assert!(!report.has_errors());
    }

    #[test]
    fn ef022_armed_but_empty_partition_plan_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut p = crate::model::testutil::partition();
        p.partition_events = 0;
        p.slow_links = 0;
        model.partition = Some(p);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF022), "{}", report.to_text());
        assert!(!report.has_errors());

        // Slowdowns alone are a real experiment — no purity warning.
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut p = crate::model::testutil::partition();
        p.partition_events = 0;
        p.slow_links = 2;
        model.partition = Some(p);
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn benign_hedge_config_is_clean() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        model.hedge = Some(crate::model::testutil::hedge());
        let report = analyze(&model);
        assert!(report.is_clean(), "{}", report.to_text());
    }

    #[test]
    fn ef026_hedging_single_partition_side_warns() {
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].has_partition_scheme = true;
        op.indices[0].partitions = 1;
        let mut model = job(vec![op]);
        model.hedge = Some(crate::model::testutil::hedge());
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF026), "{}", report.to_text());
        assert!(!report.has_errors(), "EF026 is a warning");

        // Two partition-sides give the backup something to race.
        let mut op = operator("a", StrategyKind::Cache);
        op.indices[0].has_partition_scheme = true;
        op.indices[0].partitions = 2;
        let mut model = job(vec![op]);
        model.hedge = Some(crate::model::testutil::hedge());
        assert!(analyze(&model).is_clean());
    }

    #[test]
    fn ef026_hedging_unreplicated_schemeless_index_warns() {
        let mut model = job(vec![operator("a", StrategyKind::Cache)]);
        let mut h = crate::model::testutil::hedge();
        h.dfs_replication = 1;
        model.hedge = Some(h);
        let report = analyze(&model);
        assert!(report.has_code(DiagCode::EF026), "{}", report.to_text());
        assert!(!report.has_errors());
    }

    #[test]
    fn absent_partition_and_hedge_models_skip_their_checks() {
        let report = analyze(&job(vec![operator("a", StrategyKind::Cache)]));
        assert!(!report.has_code(DiagCode::EF025));
        assert!(!report.has_code(DiagCode::EF026));
    }
}
