//! Structured diagnostics: stable codes, severities, spans, and reports.

use std::fmt;

/// Stable diagnostic codes (`EF001`..). Codes are append-only: a code is
/// never renumbered or reused once released, so tooling can match on them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum DiagCode {
    /// Operator arity mismatch: plan/stat index count differs from the
    /// operator's declared `num_indices`.
    EF001,
    /// Duplicate operator names within one job.
    EF002,
    /// Tail (post-reduce) operator in a map-only job.
    EF003,
    /// Property 4 violation: a shuffle-strategy index access ordered after
    /// a baseline/cache access in the same operator plan.
    EF004,
    /// IndexLocality chosen for an index with no partition scheme.
    EF005,
    /// Shuffle strategy (Repartition/IndexLocality) chosen for an index
    /// declared non-shuffleable.
    EF006,
    /// Lookup-key type incompatible with the accessor's declared key kind.
    EF007,
    /// Degenerate partition scheme (zero partitions).
    EF008,
    /// Negative estimated cost.
    EF009,
    /// Cache-strategy estimate below the `T_cache` probe floor.
    EF010,
    /// `S_min` monotonicity violation along the planned access order.
    EF011,
    /// Non-deterministic accessor: adaptive result-reuse disabled.
    EF012,
    /// FullEnumerate and k-Repart disagree on plan cost.
    EF013,
    /// Volatile operator carrying a non-baseline plan.
    EF014,
    /// Unsatisfiable fault-tolerance configuration (e.g. a zero per-index
    /// timeout: every lookup attempt times out before it can answer).
    EF015,
    /// Risky fault-tolerance configuration (e.g. `FailJob` with zero
    /// retries, or a backoff base above its own cap).
    EF016,
    /// Unrecoverable corruption configuration: chunk corruption injected
    /// with DFS replication 1 — the first corrupted chunk has no intact
    /// replica to re-read from, so the job fails by construction.
    EF017,
    /// Undetectable corruption configuration: cache entries are corrupted
    /// while a cache-strategy plan is in use, but checksum verification is
    /// disabled — poisoned entries would be served as answers.
    EF018,
    /// Cost-model inconsistency: a statistics token is out of its legal
    /// range (`miss ∉ [0,1]`, `Θ < 1`, negative sizes/times), or the
    /// Eq. 1–4 estimate *decreases* when the input cardinality doubles —
    /// the estimates are sums of terms linear in `N1`, so they must be
    /// monotone in it.
    EF019,
    /// Injection-plan conflict: two injection layers (faults, corruption,
    /// chaos) are configured so their combination is unsurvivable or
    /// silently defeats the experiment (e.g. chaos kills every node, or
    /// kills + quarantines together exhaust the replica budget).
    EF020,
    /// Cache-config incoherence: a cache-strategy plan with a zero-entry
    /// cache, or a negative/NaN `T_cache` probe time.
    EF021,
    /// Quiet-plan purity violation: an injection layer is armed by a plan
    /// that injects nothing. Quiet plans must short-circuit before
    /// arming (`is_quiet()`), so an armed-but-empty layer means a lowering
    /// guard was bypassed and the run pays injection bookkeeping for free.
    EF022,
    /// Measured-stats injection inconsistency: statistics served from the
    /// cross-job re-optimization store violate the same invariants
    /// `EF019` enforces for `statsx` tokens — a token outside its legal
    /// range, or an Eq. 1–4 estimate that *decreases* when the recorded
    /// `N1` doubles. A store entry that fails here would poison every
    /// warm-start plan built from it.
    EF023,
    /// Tenancy-config incoherence: a multi-tenant serving configuration
    /// that cannot serve — zero-slot quotas (`max_running`/`max_queued`/
    /// queue capacity/concurrency of 0), degenerate deficit weights
    /// (weight 0 never wins a grant), malformed tenant names or cache
    /// shares, a job tagged with an unknown tenant — or that likely
    /// starves the job it admits (a rate limit below the job's expected
    /// lookup demand; warning).
    EF024,
    /// Unsurvivable or degenerate gray-failure configuration: a partition
    /// that never heals isolates every node of the cluster (no reachable
    /// side is left to finish the job; error), permanent isolation
    /// against an unreplicated DFS (any chunk hosted behind the partition
    /// has no reachable replica; warning), or a failure detector whose
    /// heartbeat interval is at or above its suspicion threshold (every
    /// silent beat immediately suspects the node; warning).
    EF025,
    /// Pointless hedging: hedged lookups are armed but an accessor
    /// exposes only a single partition-side (or, without a partition
    /// scheme, the DFS holds a single replica) — the backup races the
    /// same service it is hedging against and can only add virtual cost.
    EF026,
}

impl DiagCode {
    /// The stable textual form, e.g. `"EF004"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagCode::EF001 => "EF001",
            DiagCode::EF002 => "EF002",
            DiagCode::EF003 => "EF003",
            DiagCode::EF004 => "EF004",
            DiagCode::EF005 => "EF005",
            DiagCode::EF006 => "EF006",
            DiagCode::EF007 => "EF007",
            DiagCode::EF008 => "EF008",
            DiagCode::EF009 => "EF009",
            DiagCode::EF010 => "EF010",
            DiagCode::EF011 => "EF011",
            DiagCode::EF012 => "EF012",
            DiagCode::EF013 => "EF013",
            DiagCode::EF014 => "EF014",
            DiagCode::EF015 => "EF015",
            DiagCode::EF016 => "EF016",
            DiagCode::EF017 => "EF017",
            DiagCode::EF018 => "EF018",
            DiagCode::EF019 => "EF019",
            DiagCode::EF020 => "EF020",
            DiagCode::EF021 => "EF021",
            DiagCode::EF022 => "EF022",
            DiagCode::EF023 => "EF023",
            DiagCode::EF024 => "EF024",
            DiagCode::EF025 => "EF025",
            DiagCode::EF026 => "EF026",
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable; execution proceeds.
    Warning,
    /// The plan is malformed; compilation must abort.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Where in the job a diagnostic points.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Span {
    /// Operator position in head→body→tail order, if operator-scoped.
    pub operator: Option<usize>,
    /// Operator name, if known.
    pub operator_name: Option<String>,
    /// Index name, if index-scoped.
    pub index: Option<String>,
}

impl Span {
    /// A job-level span (no operator).
    pub fn job() -> Self {
        Span::default()
    }

    /// An operator-level span.
    pub fn operator(pos: usize, name: impl Into<String>) -> Self {
        Span {
            operator: Some(pos),
            operator_name: Some(name.into()),
            index: None,
        }
    }

    /// An index-level span.
    pub fn index(pos: usize, op_name: impl Into<String>, index: impl Into<String>) -> Self {
        Span {
            operator: Some(pos),
            operator_name: Some(op_name.into()),
            index: Some(index.into()),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.operator, &self.operator_name, &self.index) {
            (Some(pos), Some(name), Some(index)) => {
                write!(f, "operator #{pos} `{name}`, index `{index}`")
            }
            (Some(pos), Some(name), None) => write!(f, "operator #{pos} `{name}`"),
            (Some(pos), None, _) => write!(f, "operator #{pos}"),
            _ => f.write_str("job"),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Error or warning.
    pub severity: Severity,
    /// What the diagnostic points at.
    pub span: Span,
    /// Human-readable description of the problem.
    pub message: String,
    /// Actionable suggestion for fixing it.
    pub hint: String,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(code: DiagCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span,
            message: message.into(),
            hint: String::new(),
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(code: DiagCode, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span,
            message: message.into(),
            hint: String::new(),
        }
    }

    /// Attaches a fix hint.
    pub fn with_hint(mut self, hint: impl Into<String>) -> Self {
        self.hint = hint.into();
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.span, self.message
        )?;
        if !self.hint.is_empty() {
            write!(f, " (hint: {})", self.hint)?;
        }
        Ok(())
    }
}

/// The full result of an analysis pass.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// All findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Records a finding.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diagnostics.push(diag);
    }

    /// True when no diagnostics at all were produced.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when no *errors* were produced (warnings allowed).
    pub fn is_passing(&self) -> bool {
        !self.has_errors()
    }

    /// True when at least one error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Iterates over error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Iterates over warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// True if a specific code was produced.
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Merges another report's findings into this one.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Renders the report as one line per diagnostic.
    pub fn to_text(&self) -> String {
        if self.is_clean() {
            return "analyze: clean (no diagnostics)".to_string();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    /// Collapses into `Err` on the first error, with a summary message.
    pub fn into_result(self) -> Result<Report, efind_common::Error> {
        if self.has_errors() {
            let summary = self
                .errors()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ");
            Err(efind_common::Error::InvalidConfig(format!(
                "static analysis rejected the plan: {summary}"
            )))
        } else {
            Ok(self)
        }
    }
}
