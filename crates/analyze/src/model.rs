//! The neutral plan IR the analyzer runs over.
//!
//! The core crate lowers an `IndexJobConf` + per-operator `OperatorPlan`s
//! into this representation before compilation; the analyzer depends only
//! on it (and `efind-common`), never on the runtime types themselves, so
//! the checks stay decoupled from planner internals and are trivially
//! testable with hand-built models.

use efind_common::KeyKind;

/// Mirror of the four access strategies of §3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Chained functions, every lookup remote (§3.1).
    Baseline,
    /// Per-task LRU lookup cache (§3.2).
    Cache,
    /// Extra shuffle job grouping equal keys (§3.3).
    Repartition,
    /// Shuffle co-partitioned with the index (§3.4).
    IndexLocality,
}

impl StrategyKind {
    /// True for the strategies that insert a shuffle job.
    pub fn is_shuffle(self) -> bool {
        matches!(
            self,
            StrategyKind::Repartition | StrategyKind::IndexLocality
        )
    }

    /// Short label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Baseline => "base",
            StrategyKind::Cache => "cache",
            StrategyKind::Repartition => "repart",
            StrategyKind::IndexLocality => "idxloc",
        }
    }
}

/// Mirror of the operator placements (before Map, between Map and Reduce,
/// after Reduce).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlacementKind {
    /// Before Map.
    Head,
    /// Between Map and Reduce.
    Body,
    /// After Reduce.
    Tail,
}

/// What the analyzer knows about one bound index accessor.
#[derive(Clone, Debug)]
pub struct IndexModel {
    /// Accessor name (used in spans).
    pub name: String,
    /// True when `lookup` is a pure function of the key for the duration
    /// of a job. Non-deterministic accessors trigger `EF012`.
    pub deterministic: bool,
    /// True when the index may be accessed via a shuffle strategy.
    pub shuffleable: bool,
    /// True when the accessor exposes a partition scheme.
    pub has_partition_scheme: bool,
    /// Partition count of the exposed scheme (0 without a scheme; a scheme
    /// with 0 partitions is degenerate — `EF008`).
    pub partitions: usize,
    /// The key kind the accessor accepts.
    pub key_kind: KeyKind,
    /// Estimated lookup keys per input record (`Nik`), when statistics are
    /// available.
    pub nik: Option<f64>,
    /// The full `statsx` token set backing the cost model, when a catalog
    /// (or first-wave statistics) covers this index. `EF019` range-checks
    /// these.
    pub stats: Option<IndexStatsModel>,
}

/// The per-index statistics tokens of Table 1 / the `statsx` catalog
/// line (`nik= sik= siv= tj= miss= theta= … fail=`), as the cost model
/// consumes them.
#[derive(Clone, Copy, Debug)]
pub struct IndexStatsModel {
    /// Mean index-key size in bytes (`Sik`).
    pub sik_bytes: f64,
    /// Mean index-value size in bytes (`Siv`).
    pub siv_bytes: f64,
    /// Mean remote lookup time in seconds (`Tj`).
    pub tj_secs: f64,
    /// Miss ratio in `[0, 1]`.
    pub miss_ratio: f64,
    /// Duplication factor `Θ` (distinct keys appear at least once, so
    /// `Θ ≥ 1`).
    pub theta: f64,
    /// Injected lookup failure rate in `[0, 1)`.
    pub failure_rate: f64,
}

/// One planned index access.
#[derive(Clone, Copy, Debug)]
pub struct ChoiceModel {
    /// Position of the index in the operator's declaration order.
    pub slot: usize,
    /// Chosen strategy.
    pub strategy: StrategyKind,
    /// Estimated cost in cluster-total seconds (0 for forced plans).
    pub est_cost_secs: f64,
}

/// Statistics-derived cost facts for one operator, present only when a
/// catalog (or first-wave statistics) backs the plan. The stat-dependent
/// checks (`EF009`–`EF011`, `EF013`) are skipped without them.
#[derive(Clone, Debug)]
pub struct OperatorCosts {
    /// Input records (`N1`).
    pub n1: f64,
    /// Cache probe time `T_cache` in seconds (the `EF010` floor input).
    pub t_cache_secs: f64,
    /// Best plan cost under FullEnumerate.
    pub full_est_secs: f64,
    /// Best plan cost under k-Repart.
    pub krepart_est_secs: f64,
    /// The `k` used for the k-Repart comparison.
    pub krepart_k: usize,
    /// `S_min` at each plan position, in access order.
    pub s_min_by_position: Vec<f64>,
    /// Carried intermediate size at each plan position, in access order.
    pub carried_by_position: Vec<f64>,
    /// Best plan cost re-estimated with the input cardinality doubled
    /// (`N1 → 2·N1`), when the lowering computes it. The Eq. 1–4
    /// estimates are sums of terms linear in `N1`, so this can never be
    /// below the plan cost at `N1` — `EF019` enforces that monotonicity.
    pub est_at_double_n1_secs: Option<f64>,
}

/// What the analyzer knows about one operator.
#[derive(Clone, Debug)]
pub struct OperatorModel {
    /// Operator name.
    pub name: String,
    /// Placement relative to Map/Reduce.
    pub placement: PlacementKind,
    /// How many indices the operator declares (`num_indices`).
    pub declared_arity: usize,
    /// §3.2 escape hatch: lookups are non-idempotent; every plan must pin
    /// the operator to baseline (`EF014`).
    pub volatile: bool,
    /// Bound accessors, in declaration order.
    pub indices: Vec<IndexModel>,
    /// Key kinds the operator's `preProcess` emits per index slot. Empty
    /// means undeclared (all [`KeyKind::Any`]).
    pub lookup_key_kinds: Vec<KeyKind>,
    /// The plan's index accesses, in access order.
    pub choices: Vec<ChoiceModel>,
    /// Total estimated plan cost in cluster-total seconds.
    pub est_cost_secs: f64,
    /// Statistics-derived facts, when available.
    pub costs: Option<OperatorCosts>,
}

/// The job-wide fault-tolerance configuration, lowered only when the fault
/// layer is armed (an injection plan is installed). The fault checks
/// (`EF015`, `EF016`) are skipped without it.
#[derive(Clone, Copy, Debug)]
pub struct FaultModel {
    /// Maximum retries per lookup after the first attempt.
    pub max_retries: u32,
    /// First backoff pause in nanoseconds (0 disables pauses).
    pub backoff_base_nanos: u64,
    /// Backoff cap in nanoseconds.
    pub max_backoff_nanos: u64,
    /// Per-index lookup timeout in nanoseconds, if one is enforced.
    pub timeout_nanos: Option<u64>,
    /// True when exhausted retries fail the whole job (the `FailJob` miss
    /// policy) rather than degrading to a miss.
    pub fail_job_on_exhaustion: bool,
    /// Circuit-breaker failure-rate threshold (1.0 = breaker disabled).
    pub breaker_threshold: f64,
    /// Attempts observed before the breaker may open.
    pub breaker_min_samples: u64,
    /// Aggregate injected failure probability across the plan's rules
    /// (0.0 when the plan injects no failures).
    pub inject_failure_rate: f64,
    /// Aggregate injected timeout probability.
    pub inject_timeout_rate: f64,
    /// Aggregate injected slowdown probability.
    pub inject_slowdown_rate: f64,
}

/// The job-wide data-integrity configuration, lowered only when the
/// corruption-injection layer is armed (a non-quiet corruption plan is
/// installed). The integrity checks (`EF017`, `EF018`) are skipped
/// without it.
#[derive(Clone, Copy, Debug)]
pub struct IntegrityModel {
    /// DFS replication factor of the cluster the job reads from.
    pub dfs_replication: usize,
    /// True when the plan corrupts DFS chunk replicas.
    pub corrupts_chunks: bool,
    /// True when the plan corrupts lookup-cache entries.
    pub corrupts_cache: bool,
    /// True when checksum verification runs at read boundaries. Disabled
    /// verification means corruption is injected but never detected.
    pub verification: bool,
}

/// The node-crash (chaos) configuration, lowered only when a chaos plan
/// is armed. `EF020`/`EF022` consume it.
#[derive(Clone, Copy, Debug)]
pub struct ChaosModel {
    /// Number of scheduled node-kill events.
    pub kill_events: usize,
    /// Nodes in the simulated cluster.
    pub cluster_nodes: usize,
    /// DFS replication factor the crashed replicas recover from.
    pub dfs_replication: usize,
}

/// The network-partition / failure-detector configuration, lowered only
/// when the partition layer is armed (a non-quiet partition plan is
/// installed). `EF025` consumes it. Partitions cut *visibility*, never
/// state: an isolated node keeps running, but nothing it holds can be
/// reached until the cut heals — so a cut that never heals permanently
/// removes its nodes from the reachable replica budget.
#[derive(Clone, Copy, Debug)]
pub struct PartitionModel {
    /// Scheduled partition (isolation) events, healed or not.
    pub partition_events: usize,
    /// Scheduled link-slowdown events.
    pub slow_links: usize,
    /// Distinct nodes isolated by an event that never heals.
    pub permanently_isolated: usize,
    /// Nodes in the simulated cluster.
    pub cluster_nodes: usize,
    /// DFS replication factor of the input the job reads.
    pub dfs_replication: usize,
    /// Failure-detector heartbeat interval in nanoseconds.
    pub heartbeat_interval_nanos: u64,
    /// Failure-detector suspicion threshold in nanoseconds.
    pub suspicion_nanos: u64,
}

/// The hedged-lookup configuration, lowered only when hedging is armed (a
/// latency threshold is set). `EF026` warns when a hedged accessor has no
/// second replica or partition-side to race the backup against.
#[derive(Clone, Copy, Debug)]
pub struct HedgeModel {
    /// Latency threshold past which a backup lookup is raced, in
    /// nanoseconds.
    pub threshold_nanos: u64,
    /// True when the loser's virtual cost is charged on top of the
    /// winner's (the `ChargeBoth` policy).
    pub charge_both: bool,
    /// DFS replication factor — the backup-side count for accessors that
    /// expose no partition scheme.
    pub dfs_replication: usize,
}

/// The lookup-cache configuration, lowered whenever any operator plans a
/// cache-strategy access. `EF021` checks its coherence.
#[derive(Clone, Copy, Debug)]
pub struct CacheModel {
    /// Per-task LRU capacity in entries.
    pub capacity: usize,
    /// Cache probe time `T_cache` in seconds.
    pub t_cache_secs: f64,
}

/// Measured statistics served from the cross-job re-optimization store
/// for one operator, lowered only when a store fingerprint matched at
/// compile time. `EF023` verifies them against the same token-range and
/// cost-monotonicity invariants `EF019` applies to `statsx` estimates.
#[derive(Clone, Debug)]
pub struct MeasuredStatsModel {
    /// Operator the measured stats were injected for.
    pub operator: String,
    /// Recorded input cardinality (`N1`).
    pub n1: f64,
    /// Recorded lookup keys per input record (`Nik`), one per index slot.
    pub nik: Vec<f64>,
    /// Recorded per-index statistics tokens, one per index slot.
    pub indices: Vec<IndexStatsModel>,
    /// Best full-enumeration plan cost under the measured stats.
    pub full_est_secs: f64,
    /// Best full-enumeration plan cost with `N1` doubled — never below
    /// `full_est_secs` for a consistent cost model.
    pub est_at_double_n1_secs: f64,
}

/// One serving tenant of the multi-tenant cluster configuration.
#[derive(Clone, Debug)]
pub struct TenantModel {
    /// Tenant name (a counter-name segment: non-empty, dot-free).
    pub name: String,
    /// Deficit-round-robin weight (0 = the tenant can never win a grant).
    pub weight: u64,
    /// Per-tenant queued-job quota.
    pub max_queued: usize,
    /// Per-tenant running-job quota (0 = admitted jobs can never start).
    pub max_running: usize,
    /// Reserved share of the shared lookup cache, in `[0, 1]`.
    pub cache_share: f64,
}

/// One per-index rate limit of the multi-tenant configuration.
#[derive(Clone, Debug)]
pub struct RateLimitModel {
    /// Index (accessor) name the token bucket throttles.
    pub index: String,
    /// Sustained refill rate in lookups per virtual second.
    pub rate_per_sec: f64,
    /// Burst capacity in lookups.
    pub burst: f64,
}

/// The multi-tenant serving configuration, lowered only when the tenancy
/// layer is armed (more than one tenant, or any quota/rate limit that can
/// constrain a run). `EF024` checks its coherence; the quiet single-job
/// path never lowers one.
#[derive(Clone, Debug)]
pub struct TenancyModel {
    /// Declared tenants in configuration order.
    pub tenants: Vec<TenantModel>,
    /// Shared admission-queue bound.
    pub queue_capacity: usize,
    /// Cluster-wide concurrent-job bound.
    pub max_concurrent: usize,
    /// Per-index token-bucket rate limits.
    pub rate_limits: Vec<RateLimitModel>,
    /// QoS degrade threshold in seconds of queueing delay per lookup.
    pub degrade_threshold_secs: f64,
    /// Modeled per-lookup cost of the scan fallback, in seconds.
    pub scan_fallback_cost_secs: f64,
    /// The tenant this job claims to run as, when tagged.
    pub job_tenant: Option<String>,
}

/// The whole job as the analyzer sees it.
#[derive(Clone, Debug)]
pub struct PlanModel {
    /// Job name.
    pub job: String,
    /// True when the job has a reduce phase.
    pub has_reduce: bool,
    /// Operators in data-flow order (head → body → tail).
    pub operators: Vec<OperatorModel>,
    /// Fault-tolerance configuration, when the fault layer is armed.
    pub faults: Option<FaultModel>,
    /// Data-integrity configuration, when corruption injection is armed.
    pub integrity: Option<IntegrityModel>,
    /// Node-crash configuration, when a chaos plan is armed.
    pub chaos: Option<ChaosModel>,
    /// Lookup-cache configuration, when known to the lowering.
    pub cache: Option<CacheModel>,
    /// Measured-stats injections from the cross-job store, when any
    /// operator was planned from recorded history (`EF023`).
    pub measured: Vec<MeasuredStatsModel>,
    /// Multi-tenant serving configuration, when the tenancy layer is
    /// armed (`EF024`).
    pub tenancy: Option<TenancyModel>,
    /// Network-partition configuration, when the partition layer is armed
    /// (`EF025`).
    pub partition: Option<PartitionModel>,
    /// Hedged-lookup configuration, when hedging is armed (`EF026`).
    pub hedge: Option<HedgeModel>,
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A deterministic, shuffleable, scheme-less index accepting any key.
    pub fn index(name: &str) -> IndexModel {
        IndexModel {
            name: name.into(),
            deterministic: true,
            shuffleable: true,
            has_partition_scheme: false,
            partitions: 0,
            key_kind: KeyKind::Any,
            nik: None,
            stats: None,
        }
    }

    /// A single-index operator with a one-choice plan.
    pub fn operator(name: &str, strategy: StrategyKind) -> OperatorModel {
        OperatorModel {
            name: name.into(),
            placement: PlacementKind::Head,
            declared_arity: 1,
            volatile: false,
            indices: vec![index("idx")],
            lookup_key_kinds: Vec::new(),
            choices: vec![ChoiceModel {
                slot: 0,
                strategy,
                est_cost_secs: 0.0,
            }],
            est_cost_secs: 0.0,
            costs: None,
        }
    }

    /// A job with a reduce phase wrapping the given operators.
    pub fn job(operators: Vec<OperatorModel>) -> PlanModel {
        PlanModel {
            job: "test".into(),
            has_reduce: true,
            operators,
            faults: None,
            integrity: None,
            chaos: None,
            cache: None,
            measured: Vec::new(),
            tenancy: None,
            partition: None,
            hedge: None,
        }
    }

    /// A benign integrity configuration (replicated chunks, verification
    /// on).
    pub fn integrity() -> IntegrityModel {
        IntegrityModel {
            dfs_replication: 3,
            corrupts_chunks: true,
            corrupts_cache: false,
            verification: true,
        }
    }

    /// A benign fault configuration (bounded retries, sane backoff).
    pub fn faults() -> FaultModel {
        FaultModel {
            max_retries: 3,
            backoff_base_nanos: 1_000_000,
            max_backoff_nanos: 100_000_000,
            timeout_nanos: None,
            fail_job_on_exhaustion: false,
            breaker_threshold: 0.5,
            breaker_min_samples: 16,
            inject_failure_rate: 0.05,
            inject_timeout_rate: 0.0,
            inject_slowdown_rate: 0.0,
        }
    }

    /// Legal per-index statistics tokens.
    pub fn index_stats() -> IndexStatsModel {
        IndexStatsModel {
            sik_bytes: 16.0,
            siv_bytes: 64.0,
            tj_secs: 2.0e-3,
            miss_ratio: 0.1,
            theta: 2.0,
            failure_rate: 0.0,
        }
    }

    /// A benign chaos configuration (one kill on a replicated cluster).
    pub fn chaos() -> ChaosModel {
        ChaosModel {
            kill_events: 1,
            cluster_nodes: 8,
            dfs_replication: 3,
        }
    }

    /// A benign cache configuration.
    pub fn cache() -> CacheModel {
        CacheModel {
            capacity: 1024,
            t_cache_secs: 1.0e-6,
        }
    }

    /// A benign partition configuration (one healed cut on a replicated
    /// cluster, a sane detector).
    pub fn partition() -> PartitionModel {
        PartitionModel {
            partition_events: 1,
            slow_links: 0,
            permanently_isolated: 0,
            cluster_nodes: 8,
            dfs_replication: 3,
            heartbeat_interval_nanos: 500_000,
            suspicion_nanos: 1_500_000,
        }
    }

    /// A benign hedge configuration (replicated DFS to race against).
    pub fn hedge() -> HedgeModel {
        HedgeModel {
            threshold_nanos: 2_000_000,
            charge_both: false,
            dfs_replication: 3,
        }
    }

    /// A benign two-tenant serving configuration.
    pub fn tenancy() -> TenancyModel {
        TenancyModel {
            tenants: vec![
                TenantModel {
                    name: "alpha".into(),
                    weight: 2,
                    max_queued: 8,
                    max_running: 2,
                    cache_share: 0.5,
                },
                TenantModel {
                    name: "beta".into(),
                    weight: 1,
                    max_queued: 8,
                    max_running: 2,
                    cache_share: 0.25,
                },
            ],
            queue_capacity: 16,
            max_concurrent: 4,
            rate_limits: Vec::new(),
            degrade_threshold_secs: 1.0e-3,
            scan_fallback_cost_secs: 2.0e-6,
            job_tenant: Some("alpha".into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_shuffle_classification() {
        assert!(!StrategyKind::Baseline.is_shuffle());
        assert!(!StrategyKind::Cache.is_shuffle());
        assert!(StrategyKind::Repartition.is_shuffle());
        assert!(StrategyKind::IndexLocality.is_shuffle());
    }

    #[test]
    fn key_kind_compatibility() {
        assert!(KeyKind::Any.compatible(KeyKind::Int));
        assert!(KeyKind::Int.compatible(KeyKind::Any));
        assert!(KeyKind::Int.compatible(KeyKind::Int));
        assert!(!KeyKind::Int.compatible(KeyKind::Text));
    }
}
