//! Static plan analysis for the EFind reproduction.
//!
//! `efind-analyze` verifies an index job + its per-operator plans *before*
//! execution: the core crate lowers the runtime types into the neutral
//! [`model`] IR and [`analyze`] emits structured [`Diagnostic`]s with
//! stable `EFxxx` codes. Errors abort compilation; warnings surface in
//! `explain` output and at job start.
//!
//! See the "Static plan analysis" section of `DESIGN.md` for the full
//! code table.

#![warn(missing_docs)]

pub mod checks;
pub mod diag;
pub mod model;

pub use checks::analyze;
pub use diag::{DiagCode, Diagnostic, Report, Severity, Span};
pub use model::{
    CacheModel, ChaosModel, ChoiceModel, FaultModel, HedgeModel, IndexModel, IndexStatsModel,
    IntegrityModel, MeasuredStatsModel, OperatorCosts, OperatorModel, PartitionModel,
    PlacementKind, PlanModel, RateLimitModel, StrategyKind, TenancyModel, TenantModel,
};
