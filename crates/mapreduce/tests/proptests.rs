//! Property-based tests for the MapReduce framework: shuffle correctness,
//! determinism, and combiner equivalence on arbitrary inputs.

use efind_cluster::Cluster;
use efind_common::{Datum, Record};
use efind_dfs::{Dfs, DfsConfig};
use efind_mapreduce::{mapper_fn, reducer_fn, run_job, JobConf};
use proptest::prelude::*;

fn cluster() -> Cluster {
    Cluster::builder()
        .nodes(3)
        .map_slots(2)
        .reduce_slots(2)
        .build()
}

fn load(records: &[(i64, i64)]) -> Dfs {
    let mut dfs = Dfs::new(
        cluster(),
        DfsConfig {
            chunk_size_bytes: 256,
            replication: 2,
            seed: 6,
        },
    );
    let recs: Vec<Record> = records
        .iter()
        .enumerate()
        .map(|(i, (k, v))| Record::new(i as i64, Datum::List(vec![Datum::Int(*k), Datum::Int(*v)])))
        .collect();
    dfs.write_file("in", recs);
    dfs
}

fn sum_by_key_conf(reducers: usize, combiner: bool) -> JobConf {
    let sum = reducer_fn(
        |key,
         values,
         out: &mut dyn efind_mapreduce::Collector,
         _ctx: &mut efind_mapreduce::TaskCtx| {
            let total: i64 = values.iter().filter_map(Datum::as_int).sum();
            out.collect(Record::new(key, total));
        },
    );
    let mut conf = JobConf::new("sum", "in", "out")
        .add_mapper(mapper_fn(|rec, out, _| {
            let f = rec.value.as_list().unwrap();
            out.collect(Record {
                key: f[0].clone(),
                value: f[1].clone(),
            });
        }))
        .with_reducer(sum.clone(), reducers);
    if combiner {
        conf = conf.with_combiner(sum);
    }
    conf
}

fn reference(records: &[(i64, i64)]) -> Vec<(i64, i64)> {
    let mut map = std::collections::BTreeMap::new();
    for (k, v) in records {
        *map.entry(*k).or_insert(0i64) += v;
    }
    map.into_iter().collect()
}

fn run_sum(records: &[(i64, i64)], reducers: usize, combiner: bool) -> Vec<(i64, i64)> {
    let c = cluster();
    let mut dfs = load(records);
    run_job(&c, &mut dfs, &sum_by_key_conf(reducers, combiner)).unwrap();
    let mut out: Vec<(i64, i64)> = dfs
        .read_file("out")
        .unwrap()
        .iter()
        .map(|r| (r.key.as_int().unwrap(), r.value.as_int().unwrap()))
        .collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shuffle_groups_match_reference(
        records in proptest::collection::vec((-20i64..20, -100i64..100), 1..300),
        reducers in 1usize..8,
    ) {
        prop_assert_eq!(run_sum(&records, reducers, false), reference(&records));
    }

    #[test]
    fn reducer_count_never_changes_the_answer(
        records in proptest::collection::vec((-10i64..10, -50i64..50), 1..200),
    ) {
        let one = run_sum(&records, 1, false);
        let many = run_sum(&records, 7, false);
        prop_assert_eq!(one, many);
    }

    #[test]
    fn combiner_is_transparent_for_associative_sums(
        records in proptest::collection::vec((-10i64..10, -50i64..50), 1..200),
    ) {
        prop_assert_eq!(run_sum(&records, 4, true), run_sum(&records, 4, false));
    }

    #[test]
    fn runs_are_deterministic(
        records in proptest::collection::vec((0i64..15, 0i64..50), 1..150),
    ) {
        let a = run_sum(&records, 3, false);
        let b = run_sum(&records, 3, false);
        prop_assert_eq!(a, b);
        // Virtual makespans are reproducible too.
        let c = cluster();
        let mut d1 = load(&records);
        let t1 = run_job(&c, &mut d1, &sum_by_key_conf(3, false)).unwrap().stats.makespan();
        let mut d2 = load(&records);
        let t2 = run_job(&c, &mut d2, &sum_by_key_conf(3, false)).unwrap().stats.makespan();
        prop_assert_eq!(t1, t2);
    }
}
