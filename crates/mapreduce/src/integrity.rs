//! Job-level data-integrity ledger.
//!
//! When a [`CorruptionPlan`](efind_cluster::CorruptionPlan) flips bytes in
//! DFS chunk replicas, shuffle payloads, lookup-cache entries, or index
//! responses, every read boundary verifies a CRC-32 and takes a repair
//! path on mismatch: re-read from an alternate replica, refetch the
//! shuffle payload, invalidate the poisoned cache entry, or re-transfer
//! the index response. The runner records each of those actions here —
//! corruption costs virtual time, never answers.
//!
//! Under the quiet plan the ledger stays [`IntegrityLog::default`] and
//! contributes nothing — no counters, no report lines — so
//! corruption-free runs are bit-identical to a build that never heard of
//! checksums (the hotpath golden fingerprints stay pinned). The runner
//! classifies the corruption layer once per job (quiet-path
//! monomorphization) and skips both the counter-map sweep of
//! [`IntegrityLog::collect_lookup_counters`] and the `add_counters`
//! mirror when the layer is Quiet — observably identical, since a quiet
//! layer's ledger is all zeros and zeros are never written.

use efind_cluster::SimDuration;

use crate::counters::Counters;

/// Everything that happened to keep one job's data trustworthy.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntegrityLog {
    /// Input chunks with at least one corrupt replica discovered at a
    /// read boundary, as `(file, chunk index)` sorted for determinism.
    pub corrupt_chunks: Vec<(String, usize)>,
    /// Replicas quarantined after failing CRC verification (removed from
    /// their chunk's host set so they are never served again).
    pub quarantined_replicas: usize,
    /// Wasted replica fetches: a reader pulled a copy, saw the CRC
    /// mismatch, and re-read from an alternate replica.
    pub chunk_rereads: u64,
    /// Virtual time those wasted fetches and re-reads cost (charged into
    /// the affected map tasks).
    pub reread_time: SimDuration,
    /// Shuffle payloads that failed verification at the reducer and were
    /// refetched from the source map output.
    pub shuffle_refetches: u64,
    /// Virtual time the shuffle refetches cost (charged into the
    /// affected reduce tasks).
    pub shuffle_refetch_time: SimDuration,
    /// Poisoned lookup-cache entries detected on a cache hit, evicted,
    /// and re-fetched from the index.
    pub cache_invalidations: u64,
    /// Index responses that failed verification on the wire and were
    /// re-transferred.
    pub lookup_refetches: u64,
    /// Chunks re-replicated from a clean copy after quarantine dropped
    /// them below their replication target.
    pub repaired_chunks: usize,
    /// Bytes those repair copies moved.
    pub repaired_bytes: u64,
    /// Virtual time of the repair copies (priced on the network and disk
    /// models; background work, not part of the job makespan).
    pub repair_time: SimDuration,
}

impl IntegrityLog {
    /// True when no integrity action of any kind was taken.
    pub fn is_empty(&self) -> bool {
        *self == IntegrityLog::default()
    }

    /// Sums the per-operator integrity counters the lookup layer wrote
    /// (`efind.<op>.<j>.integrity.cache.invalid` and
    /// `efind.<op>.<j>.integrity.refetch`) into the ledger's cache and
    /// lookup fields, so the job-level view aggregates every operator.
    pub fn collect_lookup_counters(&mut self, counters: &Counters) {
        for (name, v) in counters.iter_sorted() {
            if name.ends_with(".integrity.cache.invalid") {
                self.cache_invalidations += v.max(0) as u64;
            } else if name.ends_with(".integrity.refetch") {
                self.lookup_refetches += v.max(0) as u64;
            }
        }
    }

    /// Mirrors the ledger into `mr.integrity.*` counters. Only nonzero
    /// values are written, so a corruption-free run's counter set (and
    /// its fingerprint) is untouched.
    pub fn add_counters(&self, counters: &mut Counters) {
        let mut put = |name: &str, v: i64| {
            if v != 0 {
                counters.add(name, v);
            }
        };
        put(
            "mr.integrity.chunks.corrupt",
            self.corrupt_chunks.len() as i64,
        );
        put(
            "mr.integrity.replicas.quarantined",
            self.quarantined_replicas as i64,
        );
        put("mr.integrity.chunk.rereads", self.chunk_rereads as i64);
        put(
            "mr.integrity.reread.nanos",
            self.reread_time.as_nanos() as i64,
        );
        put(
            "mr.integrity.shuffle.refetches",
            self.shuffle_refetches as i64,
        );
        put(
            "mr.integrity.shuffle.refetch.nanos",
            self.shuffle_refetch_time.as_nanos() as i64,
        );
        put(
            "mr.integrity.cache.invalidations",
            self.cache_invalidations as i64,
        );
        put(
            "mr.integrity.lookup.refetches",
            self.lookup_refetches as i64,
        );
        put("mr.integrity.repaired.chunks", self.repaired_chunks as i64);
        put("mr.integrity.repaired.bytes", self.repaired_bytes as i64);
        put(
            "mr.integrity.repair.nanos",
            self.repair_time.as_nanos() as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ledger_is_empty_and_counter_free() {
        let log = IntegrityLog::default();
        assert!(log.is_empty());
        let mut counters = Counters::new();
        log.add_counters(&mut counters);
        assert!(counters.iter_sorted().is_empty());
    }

    #[test]
    fn nonzero_fields_become_counters() {
        let log = IntegrityLog {
            corrupt_chunks: vec![("input".into(), 3), ("input".into(), 7)],
            quarantined_replicas: 2,
            chunk_rereads: 2,
            reread_time: SimDuration::from_millis(4),
            shuffle_refetches: 5,
            shuffle_refetch_time: SimDuration::from_millis(1),
            cache_invalidations: 9,
            lookup_refetches: 3,
            repaired_chunks: 2,
            repaired_bytes: 2048,
            repair_time: SimDuration::from_millis(2),
        };
        assert!(!log.is_empty());
        let mut counters = Counters::new();
        log.add_counters(&mut counters);
        assert_eq!(counters.get("mr.integrity.chunks.corrupt"), 2);
        assert_eq!(counters.get("mr.integrity.replicas.quarantined"), 2);
        assert_eq!(counters.get("mr.integrity.shuffle.refetches"), 5);
        assert_eq!(counters.get("mr.integrity.cache.invalidations"), 9);
        assert_eq!(counters.get("mr.integrity.repaired.bytes"), 2048);
        assert_eq!(
            counters.get("mr.integrity.reread.nanos"),
            SimDuration::from_millis(4).as_nanos() as i64
        );
    }
}
