//! Job-level gray-failure ledger.
//!
//! When a [`PartitionPlan`](efind_cluster::PartitionPlan) cuts or degrades
//! links during a job, the runner records every detection and recovery
//! action here: which partitions and slow links fell inside the job's
//! window, which nodes the heartbeat detector suspected and how each
//! suspicion resolved (confirmed / refuted / false positive), which task
//! attempts were re-placed and which duplicate results were reconciled
//! exactly-once, how long results stalled waiting for heals, how long
//! reducers waited to fetch map outputs back from a healing node, and
//! what re-replication the detector scheduled — including the copies it
//! *cancelled* when a suspected node rejoined.
//!
//! Under the quiet plan the ledger stays [`PartitionLog::default`] and
//! contributes nothing — no counters, no report lines — so partition-free
//! runs are bit-identical to a build that never heard of partitions. Like
//! its siblings ([`RecoveryLog`](crate::RecoveryLog),
//! [`IntegrityLog`](crate::IntegrityLog)) the runner skips even the
//! `add_counters` call when the layer is Quiet, which is observably
//! identical because only nonzero fields ever become counters.

use efind_cluster::SimDuration;

use crate::counters::Counters;

/// Everything that happened to keep one job alive through gray failures.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PartitionLog {
    /// Partition events overlapping this job's window.
    pub events: usize,
    /// Link slowdowns overlapping this job's window.
    pub slow_links: usize,
    /// Nodes the heartbeat detector suspected.
    pub suspected: usize,
    /// Suspicions withdrawn because the node rejoined (heal or late
    /// heartbeat) — its pending re-replication was cancelled and its
    /// in-flight results reconciled.
    pub refuted: usize,
    /// Suspicions confirmed: the partition never healed and the node is
    /// treated as gone for the rest of the job.
    pub confirmed: usize,
    /// Suspicions of nodes that were reachable all along (slow links
    /// starving heartbeats past the threshold).
    pub false_positives: usize,
    /// Task attempts re-placed onto reachable nodes after suspicion.
    pub replaced_tasks: u64,
    /// Tasks whose results waited for a heal the detector never saw.
    pub stalled_tasks: u64,
    /// Virtual time results spent waiting on heals.
    pub stall: SimDuration,
    /// Duplicate results discarded during exactly-once reconciliation
    /// (a rejoined node's late answers, or losing redundant copies).
    pub orphan_results: u64,
    /// Shuffle fetches that waited out an isolation window instead of
    /// triggering a recompute (the partition healed).
    pub failover_fetches: u64,
    /// Virtual time reducers spent waiting for those heals.
    pub failover_wait: SimDuration,
    /// Re-replications the detector scheduled on suspicion.
    pub rereplication_pending: usize,
    /// Of those, cancelled because the node rejoined before they ran.
    pub rereplication_cancelled: usize,
    /// Chunks actually re-replicated for confirmed-gone nodes. The DFS
    /// state is *not* mutated — the isolated replicas still exist — so
    /// this is pure background cost, never a data change.
    pub rereplicated_chunks: usize,
    /// Bytes those background copies moved.
    pub rereplicated_bytes: u64,
    /// Virtual time of the background copies (priced on the network and
    /// disk models; not part of the job makespan).
    pub rereplication_time: SimDuration,
}

impl PartitionLog {
    /// True when no gray failure touched the job in any way.
    pub fn is_empty(&self) -> bool {
        *self == PartitionLog::default()
    }

    /// Mirrors the ledger into `mr.partition.*` counters. Only nonzero
    /// values are written, so a quiet run's counter set (and its
    /// fingerprint) is untouched.
    pub fn add_counters(&self, counters: &mut Counters) {
        let mut put = |name: &str, v: i64| {
            if v != 0 {
                counters.add(name, v);
            }
        };
        put("mr.partition.events", self.events as i64);
        put("mr.partition.slow.links", self.slow_links as i64);
        put("mr.partition.suspected", self.suspected as i64);
        put("mr.partition.refuted", self.refuted as i64);
        put("mr.partition.confirmed", self.confirmed as i64);
        put("mr.partition.false.positives", self.false_positives as i64);
        put("mr.partition.replaced.tasks", self.replaced_tasks as i64);
        put("mr.partition.stalled.tasks", self.stalled_tasks as i64);
        put("mr.partition.stall.nanos", self.stall.as_nanos() as i64);
        put("mr.partition.orphan.results", self.orphan_results as i64);
        put(
            "mr.partition.failover.fetches",
            self.failover_fetches as i64,
        );
        put(
            "mr.partition.failover.nanos",
            self.failover_wait.as_nanos() as i64,
        );
        put(
            "mr.partition.rereplication.pending",
            self.rereplication_pending as i64,
        );
        put(
            "mr.partition.rereplication.cancelled",
            self.rereplication_cancelled as i64,
        );
        put(
            "mr.partition.rereplicated.chunks",
            self.rereplicated_chunks as i64,
        );
        put(
            "mr.partition.rereplicated.bytes",
            self.rereplicated_bytes as i64,
        );
        put(
            "mr.partition.rereplication.nanos",
            self.rereplication_time.as_nanos() as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ledger_is_empty_and_counter_free() {
        let log = PartitionLog::default();
        assert!(log.is_empty());
        let mut counters = Counters::new();
        log.add_counters(&mut counters);
        assert!(counters.iter_sorted().is_empty());
    }

    #[test]
    fn nonzero_fields_become_counters() {
        let log = PartitionLog {
            events: 2,
            slow_links: 1,
            suspected: 3,
            refuted: 2,
            confirmed: 1,
            false_positives: 1,
            replaced_tasks: 5,
            stalled_tasks: 2,
            stall: SimDuration::from_millis(4),
            orphan_results: 3,
            failover_fetches: 6,
            failover_wait: SimDuration::from_millis(2),
            rereplication_pending: 3,
            rereplication_cancelled: 2,
            rereplicated_chunks: 7,
            rereplicated_bytes: 7168,
            rereplication_time: SimDuration::from_millis(1),
        };
        assert!(!log.is_empty());
        let mut counters = Counters::new();
        log.add_counters(&mut counters);
        assert_eq!(counters.get("mr.partition.events"), 2);
        assert_eq!(counters.get("mr.partition.suspected"), 3);
        assert_eq!(counters.get("mr.partition.refuted"), 2);
        assert_eq!(counters.get("mr.partition.false.positives"), 1);
        assert_eq!(counters.get("mr.partition.replaced.tasks"), 5);
        assert_eq!(counters.get("mr.partition.orphan.results"), 3);
        assert_eq!(counters.get("mr.partition.rereplication.cancelled"), 2);
        assert_eq!(
            counters.get("mr.partition.stall.nanos"),
            SimDuration::from_millis(4).as_nanos() as i64
        );
    }
}
