//! The concurrent multi-job executor: N jobs from M tenants over one
//! shared cluster and DFS.
//!
//! This is the runner-side half of `efind_cluster::tenancy`: a
//! deterministic virtual-time event loop that feeds submissions to the
//! [`MultiTenantScheduler`], executes each granted job through the
//! ordinary [`Runner`] (real computation, modeled durations, the job's own
//! chaos/corruption plans), and completes it at
//! `grant + makespan + QoS delay`. Jobs overlap on the virtual clock —
//! hundreds may be queued, several running — while real execution stays
//! sequential in grant order, so the whole mix is bit-identically
//! reproducible.
//!
//! Quiet discipline (PR 7): when the tenancy config is quiet
//! ([`TenancyConfig::is_quiet`]), the executor takes the literal
//! single-job path — each job runs through a plain [`Runner`] at its
//! submission time, no scheduler, no ledger, no counters — byte-identical
//! to a runtime without the layer (pinned by the quiet-tenancy golden).

use efind_cluster::tenancy::{
    MultiTenantScheduler, QosCharge, SchedLogEntry, TenancyConfig, TenancyLedger, TenantId,
};
use efind_cluster::{ChaosPlan, Cluster, CorruptionPlan, SimDuration, SimTime};
use efind_common::{Error, Result};
use efind_dfs::Dfs;

use crate::counters::Counters;
use crate::job::JobConf;
use crate::runner::{JobResult, Runner};

/// One tenant job in a mix: a vanilla [`JobConf`] plus its tenant, its
/// virtual submission time, and its declared scheduler inputs.
pub struct TenantJob {
    /// Tenant name; must resolve in the [`TenancyConfig`] (any name works
    /// against the quiet config's implicit tenant).
    pub tenant: String,
    /// Virtual submission time.
    pub submit: SimTime,
    /// The job to run.
    pub conf: JobConf,
    /// Node-crash plan for this job only (quiet by default). One tenant's
    /// armed chaos must not perturb another tenant's observables.
    pub chaos: ChaosPlan,
    /// Corruption plan for this job only (quiet by default).
    pub corruption: CorruptionPlan,
    /// Deficit-round-robin cost charge (1 = fairness in job counts).
    pub cost_hint: u64,
    /// Declared per-index lookup demand, charged against the config's
    /// rate-limit buckets at grant time.
    pub demand: Vec<(String, u64)>,
}

impl TenantJob {
    /// A job with quiet injection plans, unit cost, and no index demand.
    pub fn new(tenant: impl Into<String>, submit: SimTime, conf: JobConf) -> Self {
        TenantJob {
            tenant: tenant.into(),
            submit,
            conf,
            chaos: ChaosPlan::none(),
            corruption: CorruptionPlan::none(),
            cost_hint: 1,
            demand: Vec::new(),
        }
    }

    /// Arms a node-crash plan on this job only.
    pub fn with_chaos(mut self, chaos: ChaosPlan) -> Self {
        self.chaos = chaos;
        self
    }

    /// Arms a corruption plan on this job only.
    pub fn with_corruption(mut self, corruption: CorruptionPlan) -> Self {
        self.corruption = corruption;
        self
    }

    /// Sets the deficit-round-robin cost charge.
    pub fn cost_hint(mut self, cost: u64) -> Self {
        self.cost_hint = cost;
        self
    }

    /// Declares lookup demand against one index.
    pub fn demand(mut self, index: impl Into<String>, lookups: u64) -> Self {
        self.demand.push((index.into(), lookups));
        self
    }
}

/// Per-job outcome of a tenant mix.
pub struct TenantJobOutcome {
    /// The job's tenant.
    pub tenant: TenantId,
    /// Virtual submission time.
    pub submitted: SimTime,
    /// The admission rejection, if the job never entered the queue.
    pub rejected: Option<Error>,
    /// Grant (start) time; `None` when rejected or never granted.
    pub started: Option<SimTime>,
    /// Completion time (`start + makespan + QoS delay`).
    pub finished: Option<SimTime>,
    /// QoS charge of the job's index demand at grant time.
    pub qos: QosCharge,
    /// The executed job's result; `None` when the job never ran, `Err`
    /// when it ran and failed (the mix continues — one tenant's failure
    /// never aborts another's jobs).
    pub result: Option<Result<JobResult>>,
}

/// The whole mix's outcome: per-job results plus the tenancy observables.
pub struct TenantMixOutcome {
    /// One outcome per submitted job, in submission order.
    pub jobs: Vec<TenantJobOutcome>,
    /// The deterministic schedule log (empty on the quiet path).
    pub log: Vec<SchedLogEntry>,
    /// The per-tenant serving ledger (all-zero on the quiet path).
    pub ledger: TenancyLedger,
    /// Mix-level counters mirrored from the ledger — contributes nothing
    /// when the tenancy layer is quiet (empty ledgers are invisible).
    pub counters: Counters,
    /// Virtual time when the last job completed.
    pub makespan: SimDuration,
}

#[derive(Clone, Copy)]
struct RunningJob {
    finish: SimTime,
    grant_seq: u64,
    job: u64,
    tenant: TenantId,
}

/// Runs a tenant mix over one shared cluster and DFS.
///
/// Submissions are processed in `(submit, submission index)` order;
/// completions at a given instant are processed before submissions at the
/// same instant so freed capacity is visible to admission control. The
/// returned outcome — schedule log, ledger, per-job times, counters, and
/// every executed job's stats — is a pure function of the inputs: double
/// runs are bit-identical.
pub fn run_tenant_mix(
    cluster: &Cluster,
    dfs: &mut Dfs,
    cfg: &TenancyConfig,
    jobs: Vec<TenantJob>,
) -> Result<TenantMixOutcome> {
    cfg.validate()?;
    if cfg.is_quiet() {
        return run_quiet(cluster, dfs, jobs);
    }

    let mut sched = MultiTenantScheduler::new(cfg.clone())?;
    let mut outcomes: Vec<TenantJobOutcome> = Vec::with_capacity(jobs.len());
    let mut tenants: Vec<TenantId> = Vec::with_capacity(jobs.len());
    for job in &jobs {
        let tenant = cfg.tenant_id(&job.tenant).ok_or_else(|| {
            Error::InvalidConfig(format!(
                "job {:?} names unknown tenant {:?}",
                job.conf.name, job.tenant
            ))
        })?;
        tenants.push(tenant);
        outcomes.push(TenantJobOutcome {
            tenant,
            submitted: job.submit,
            rejected: None,
            started: None,
            finished: None,
            qos: QosCharge::ZERO,
            result: None,
        });
    }

    // Submission order: by (submit time, submission index); the sort is
    // stable, so equal times keep input order.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| jobs[i].submit);

    let mut next_sub = 0usize;
    let mut running: Vec<RunningJob> = Vec::new();
    let mut grant_seq = 0u64;
    let mut makespan = SimDuration::ZERO;

    loop {
        // Earliest completion, ties to the earliest grant.
        let next_fin = running
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (r.finish, r.grant_seq))
            .map(|(i, r)| (i, *r));
        let next_sub_at = order.get(next_sub).map(|&i| jobs[i].submit);

        // Completions first on ties: freed capacity must be visible to a
        // submission arriving at the same instant.
        let take_completion = match (next_fin, next_sub_at) {
            (Some((_, r)), Some(s)) => r.finish <= s,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let now = if take_completion {
            let (ri, r) = next_fin.expect("completion selected");
            running.swap_remove(ri);
            sched.complete(r.finish, r.job, r.tenant);
            r.finish
        } else if let Some(at) = next_sub_at {
            {
                let idx = order[next_sub];
                next_sub += 1;
                let job = &jobs[idx];
                if let Err(err) = sched.submit(
                    at,
                    idx as u64,
                    tenants[idx],
                    job.cost_hint,
                    job.demand.clone(),
                ) {
                    outcomes[idx].rejected = Some(err);
                }
                at
            }
        } else {
            break;
        };

        // Drain grants: every grant executes its job for real, right here,
        // in grant order.
        while let Some(grant) = sched.try_grant(now) {
            let idx = grant.job as usize;
            let job = &jobs[idx];
            grant_seq += 1;
            let res = Runner::with_chaos(cluster, dfs, job.chaos.clone())
                .with_corruption(job.corruption.clone())
                .run(&job.conf, grant.start);
            let run_time = match &res {
                Ok(r) => r.stats.makespan(),
                // A failed job surrenders its slot immediately; the named
                // error is the job's outcome, not the mix's.
                Err(_) => SimDuration::ZERO,
            };
            let finish = grant.start + run_time + grant.qos.total_delay();
            makespan = makespan.max(finish.since(SimTime::ZERO));
            outcomes[idx].started = Some(grant.start);
            outcomes[idx].finished = Some(finish);
            outcomes[idx].qos = grant.qos;
            outcomes[idx].result = Some(res);
            running.push(RunningJob {
                finish,
                grant_seq,
                job: grant.job,
                tenant: grant.tenant,
            });
        }
    }

    let ledger = sched.ledger().clone();
    let counters = ledger_counters(cfg, &ledger);
    Ok(TenantMixOutcome {
        jobs: outcomes,
        log: sched.log().to_vec(),
        ledger,
        counters,
        makespan,
    })
}

/// The literal quiet path: each job runs through a plain [`Runner`] at its
/// submission time, in submission order — no scheduler, no log, no
/// ledger, no counters. A single job submitted at `SimTime::ZERO` is
/// byte-identical to [`crate::runner::run_job`].
fn run_quiet(cluster: &Cluster, dfs: &mut Dfs, jobs: Vec<TenantJob>) -> Result<TenantMixOutcome> {
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| jobs[i].submit);
    let mut outcomes: Vec<Option<TenantJobOutcome>> = (0..jobs.len()).map(|_| None).collect();
    let mut makespan = SimDuration::ZERO;
    for &idx in &order {
        let job = &jobs[idx];
        let res = Runner::with_chaos(cluster, dfs, job.chaos.clone())
            .with_corruption(job.corruption.clone())
            .run(&job.conf, job.submit);
        let run_time = match &res {
            Ok(r) => r.stats.makespan(),
            Err(_) => SimDuration::ZERO,
        };
        let finish = job.submit + run_time;
        makespan = makespan.max(finish.since(SimTime::ZERO));
        outcomes[idx] = Some(TenantJobOutcome {
            tenant: TenantId(0),
            submitted: job.submit,
            rejected: None,
            started: Some(job.submit),
            finished: Some(finish),
            qos: QosCharge::ZERO,
            result: Some(res),
        });
    }
    Ok(TenantMixOutcome {
        jobs: outcomes
            .into_iter()
            .map(|o| o.expect("all jobs ran"))
            .collect(),
        log: Vec::new(),
        ledger: TenancyLedger::new(1),
        counters: Counters::new(),
        makespan,
    })
}

/// Mirrors a non-empty ledger into `efind.admission.*` / `efind.tenant.*`
/// counters. Zero totals are skipped, so an all-quiet mix contributes
/// nothing (the PR-7 "empty ledgers are invisible" discipline).
fn ledger_counters(cfg: &TenancyConfig, ledger: &TenancyLedger) -> Counters {
    let mut counters = Counters::new();
    if ledger.is_empty() {
        return counters;
    }
    let mut add = |name: String, v: u64| {
        if v > 0 {
            counters.add(&name, v as i64);
        }
    };
    let mut submitted = 0u64;
    let mut granted = 0u64;
    let mut rejected = 0u64;
    let mut quota_rejected = 0u64;
    for (i, row) in ledger.rows().iter().enumerate() {
        submitted += row.submitted;
        granted += row.granted;
        rejected += row.rejected;
        quota_rejected += row.quota_rejected;
        if row.is_empty() {
            continue;
        }
        let name = cfg.tenant_name(TenantId(i as u16));
        add(format!("efind.tenant.{name}.granted"), row.granted);
        add(format!("efind.tenant.{name}.completed"), row.completed);
        add(format!("efind.tenant.{name}.rejected"), row.rejected);
        add(
            format!("efind.tenant.{name}.quota.rejected"),
            row.quota_rejected,
        );
        add(format!("efind.tenant.{name}.degraded"), row.degraded);
        add(
            format!("efind.tenant.{name}.shed.lookups"),
            row.shed_lookups,
        );
        add(
            format!("efind.tenant.{name}.throttle.nanos"),
            row.throttle_nanos,
        );
        add(format!("efind.tenant.{name}.wait.nanos"), row.wait_nanos);
    }
    let mut add_global = |name: &str, v: u64| {
        if v > 0 {
            counters.add(name, v as i64);
        }
    };
    add_global("efind.admission.submitted", submitted);
    add_global("efind.admission.granted", granted);
    add_global("efind.admission.rejected", rejected);
    add_global("efind.admission.quota.rejected", quota_rejected);
    counters
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{mapper_fn, reducer_fn};
    use crate::runner::run_job;
    use efind_cluster::tenancy::TenantSpec;
    use efind_common::{Datum, Record};
    use efind_dfs::DfsConfig;

    fn setup() -> (Cluster, Dfs) {
        let cluster = Cluster::builder()
            .nodes(4)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication: 2,
                seed: 9,
            },
        );
        let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
        let records: Vec<Record> = text
            .iter()
            .cycle()
            .take(200)
            .enumerate()
            .map(|(i, w)| Record::new(i as i64, *w))
            .collect();
        dfs.write_file("input", records);
        (cluster, dfs)
    }

    fn wordcount(name: &str, out: &str) -> JobConf {
        JobConf::new(name, "input", out)
            .add_mapper(mapper_fn(|rec, out, _ctx| {
                out.collect(Record::new(rec.value.clone(), 1i64));
            }))
            .with_reducer(
                reducer_fn(|key, values, out, _ctx| {
                    let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                    out.collect(Record::new(key, total));
                }),
                2,
            )
    }

    #[test]
    fn quiet_single_job_matches_plain_runner() {
        let (cluster, mut dfs_plain) = setup();
        let plain = run_job(&cluster, &mut dfs_plain, &wordcount("wc", "out")).unwrap();

        let (cluster2, mut dfs_mix) = setup();
        let mix = run_tenant_mix(
            &cluster2,
            &mut dfs_mix,
            &TenancyConfig::none(),
            vec![TenantJob::new(
                "anyone",
                SimTime::ZERO,
                wordcount("wc", "out"),
            )],
        )
        .unwrap();

        assert!(mix.log.is_empty());
        assert!(mix.ledger.is_empty());
        assert!(mix.counters.is_empty());
        let res = mix.jobs[0].result.as_ref().unwrap().as_ref().unwrap();
        assert_eq!(res.stats.makespan(), plain.stats.makespan());
        assert_eq!(
            res.stats.counters.iter_sorted(),
            plain.stats.counters.iter_sorted()
        );
        assert_eq!(
            dfs_mix.read_file("out").unwrap(),
            dfs_plain.read_file("out").unwrap()
        );
    }

    fn contended_cfg() -> TenancyConfig {
        TenancyConfig::none()
            .tenant(TenantSpec::new("alpha").weight(2).max_queued(4))
            .tenant(TenantSpec::new("beta").weight(1).max_queued(4))
            .queue_capacity(8)
            .max_concurrent(1)
    }

    fn contended_jobs() -> Vec<TenantJob> {
        (0..4)
            .map(|i| {
                let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
                TenantJob::new(
                    tenant,
                    SimTime::ZERO + SimDuration::from_micros(i),
                    wordcount(&format!("wc{i}"), &format!("out{i}")),
                )
            })
            .collect()
    }

    #[test]
    fn armed_mix_double_run_is_bit_identical() {
        let run = || {
            let (cluster, mut dfs) = setup();
            let mix =
                run_tenant_mix(&cluster, &mut dfs, &contended_cfg(), contended_jobs()).unwrap();
            let outputs: Vec<_> = (0..4)
                .map(|i| dfs.read_file(&format!("out{i}")).unwrap())
                .collect();
            (mix, outputs)
        };
        let (a, out_a) = run();
        let (b, out_b) = run();
        assert_eq!(a.log, b.log);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.counters.iter_sorted(), b.counters.iter_sorted());
        assert_eq!(out_a, out_b);
        for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(ja.started, jb.started);
            assert_eq!(ja.finished, jb.finished);
        }
        // The armed mix mirrors its ledger into registered counters.
        assert_eq!(a.counters.get("efind.admission.submitted"), 4);
        assert_eq!(a.counters.get("efind.admission.granted"), 4);
        assert_eq!(a.counters.get("efind.tenant.alpha.granted"), 2);
        assert_eq!(a.counters.get("efind.tenant.beta.completed"), 2);
    }

    #[test]
    fn overflowing_queue_rejects_with_named_error_not_a_hang() {
        let cfg = TenancyConfig::none()
            .tenant(TenantSpec::new("alpha"))
            .tenant(TenantSpec::new("beta"))
            .queue_capacity(1)
            .max_concurrent(1);
        // All submitted at the same instant: one runs, one queues, two
        // are refused at the door.
        let jobs: Vec<TenantJob> = (0..4)
            .map(|i| {
                let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
                TenantJob::new(
                    tenant,
                    SimTime::ZERO,
                    wordcount(&format!("wc{i}"), &format!("out{i}")),
                )
            })
            .collect();
        let (cluster, mut dfs) = setup();
        let mix = run_tenant_mix(&cluster, &mut dfs, &cfg, jobs).unwrap();
        let rejected: Vec<usize> = mix
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.rejected.is_some())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(rejected, vec![2, 3]);
        assert!(matches!(
            mix.jobs[2].rejected,
            Some(Error::AdmissionRejected(_))
        ));
        for i in [0, 1] {
            assert!(mix.jobs[i].finished.is_some());
            assert!(mix.jobs[i].result.as_ref().unwrap().is_ok());
        }
        assert_eq!(mix.counters.get("efind.admission.rejected"), 2);
    }

    #[test]
    fn unknown_tenant_is_a_config_error() {
        let cfg = TenancyConfig::none()
            .tenant(TenantSpec::new("alpha"))
            .tenant(TenantSpec::new("beta"));
        let (cluster, mut dfs) = setup();
        let res = run_tenant_mix(
            &cluster,
            &mut dfs,
            &cfg,
            vec![TenantJob::new(
                "nobody",
                SimTime::ZERO,
                wordcount("wc", "out"),
            )],
        );
        assert!(matches!(res, Err(Error::InvalidConfig(_))));
    }
}
