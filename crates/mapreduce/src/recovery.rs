//! Job-level crash-recovery ledger.
//!
//! When a [`ChaosPlan`](efind_cluster::ChaosPlan) kills nodes during a job,
//! the runner records every recovery action here: which crashes fell inside
//! the job's window, which completed map tasks lost their (node-local)
//! outputs and were recomputed, how often reducers retried their shuffle
//! fetches and how long they backed off, and what the DFS re-replicated in
//! the background. The adaptive runtime reads the ledger to reuse exactly
//! the completed-task results that *survived* a crash when it re-plans
//! (the paper's Figs. 8–10 reuse claim, under real node loss).
//!
//! Under the quiet plan the ledger stays [`RecoveryLog::default`] and
//! contributes nothing — no counters, no report lines — so crash-free runs
//! are bit-identical to a build that never heard of crashes. The runner
//! goes one step further (quiet-path monomorphization): it classifies the
//! chaos layer once per job and skips even the `add_counters` call when
//! the layer is Quiet, which is observably identical because only nonzero
//! fields ever become counters.

use efind_cluster::{CrashEvent, SimDuration};

use crate::counters::Counters;

/// Everything that happened to keep one job alive through node crashes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryLog {
    /// Crash events that fell inside this job's window, in time order.
    pub crashes: Vec<CrashEvent>,
    /// Recompute waves scheduled (at most one per crash that lost
    /// completed map outputs).
    pub recompute_waves: usize,
    /// Map tasks whose completed outputs died with a node and were
    /// recomputed, sorted by task id.
    pub recomputed_map_tasks: Vec<usize>,
    /// Task attempts killed mid-run by a crash and re-executed elsewhere
    /// (map, recompute, and reduce attempts combined).
    pub crashed_attempts: usize,
    /// Shuffle fetches that failed against a dead host and were retried.
    pub fetch_retries: u64,
    /// Virtual time reducers spent in fetch backoff before the recomputed
    /// outputs became available.
    pub fetch_backoff: SimDuration,
    /// Chunks the DFS re-replicated in the background after crashes.
    pub rereplicated_chunks: usize,
    /// Bytes those background copies moved.
    pub rereplicated_bytes: u64,
    /// Virtual time of the background copies (priced on the network and
    /// disk models; not part of the job makespan).
    pub rereplication_time: SimDuration,
    /// Completed first-wave tasks whose results survived every crash —
    /// exactly the set the adaptive re-plan may reuse. Empty unless the
    /// adaptive runtime filled it in during a re-plan.
    pub surviving_tasks: Vec<usize>,
    /// Completed first-wave tasks whose results were lost to a crash and
    /// therefore re-mapped by the re-planned job. Empty unless the
    /// adaptive runtime filled it in during a re-plan.
    pub lost_tasks: Vec<usize>,
}

impl RecoveryLog {
    /// True when no recovery action of any kind was taken.
    pub fn is_empty(&self) -> bool {
        *self == RecoveryLog::default()
    }

    /// Mirrors the ledger into `mr.recovery.*` counters. Only nonzero
    /// values are written, so a quiet run's counter set (and its
    /// fingerprint) is untouched.
    pub fn add_counters(&self, counters: &mut Counters) {
        let mut put = |name: &str, v: i64| {
            if v != 0 {
                counters.add(name, v);
            }
        };
        put("mr.recovery.crashes", self.crashes.len() as i64);
        put("mr.recovery.recompute.waves", self.recompute_waves as i64);
        put(
            "mr.recovery.recompute.tasks",
            self.recomputed_map_tasks.len() as i64,
        );
        put("mr.recovery.crashed.attempts", self.crashed_attempts as i64);
        put("mr.recovery.fetch.retries", self.fetch_retries as i64);
        put(
            "mr.recovery.fetch.backoff.nanos",
            self.fetch_backoff.as_nanos() as i64,
        );
        put(
            "mr.recovery.rereplicated.chunks",
            self.rereplicated_chunks as i64,
        );
        put(
            "mr.recovery.rereplicated.bytes",
            self.rereplicated_bytes as i64,
        );
        put(
            "mr.recovery.rereplication.nanos",
            self.rereplication_time.as_nanos() as i64,
        );
        put(
            "mr.recovery.reused.tasks",
            self.surviving_tasks.len() as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use efind_cluster::{NodeId, SimTime};

    #[test]
    fn default_ledger_is_empty_and_counter_free() {
        let log = RecoveryLog::default();
        assert!(log.is_empty());
        let mut counters = Counters::new();
        log.add_counters(&mut counters);
        assert!(counters.iter_sorted().is_empty());
    }

    #[test]
    fn nonzero_fields_become_counters() {
        let log = RecoveryLog {
            crashes: vec![CrashEvent {
                node: NodeId(3),
                at: SimTime::from_nanos(10),
            }],
            recompute_waves: 1,
            recomputed_map_tasks: vec![2, 5],
            crashed_attempts: 1,
            fetch_retries: 8,
            fetch_backoff: SimDuration::from_millis(300),
            rereplicated_chunks: 4,
            rereplicated_bytes: 4096,
            rereplication_time: SimDuration::from_millis(1),
            surviving_tasks: vec![0, 1, 3],
            lost_tasks: vec![2],
        };
        assert!(!log.is_empty());
        let mut counters = Counters::new();
        log.add_counters(&mut counters);
        assert_eq!(counters.get("mr.recovery.crashes"), 1);
        assert_eq!(counters.get("mr.recovery.recompute.tasks"), 2);
        assert_eq!(counters.get("mr.recovery.fetch.retries"), 8);
        assert_eq!(counters.get("mr.recovery.reused.tasks"), 3);
        assert_eq!(
            counters.get("mr.recovery.fetch.backoff.nanos"),
            SimDuration::from_millis(300).as_nanos() as i64
        );
    }
}
