//! Job execution.
//!
//! User code runs for real — every map task reads its chunk's records,
//! applies the chained functions, and the reduce phase sorts, groups, and
//! reduces actual data — while the virtual timeline comes from the cluster
//! scheduler: each task's placement-independent cost is accumulated during
//! execution (CPU model, charges from user code, spill and shuffle
//! volumes), then [`efind_cluster::sched::schedule_phase`] assigns tasks to
//! slots and yields the phase makespan.
//!
//! The runner's pieces are public individually (`execute_maps`,
//! `run_reduce_from`, `schedule_maps`) because EFind's adaptive optimizer
//! (§4.3, Fig. 10) needs to stop a job after its first map wave, re-plan,
//! and stitch the completed wave's outputs into the new plan's reduce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use efind_cluster::{
    sched::{
        schedule_phase_chaos, schedule_phase_gray, PartitionReplay, Schedule, SlotKind, TaskSpec,
    },
    ChaosPlan, Cluster, CorruptionPlan, CrashEvent, DetectorConfig, InjectionProfile,
    PartitionPlan, SimDuration, SimTime, Suspicion, Verdict,
};
use efind_common::{crc32, Error, Record, Result};
use efind_dfs::{ChunkMeta, Dfs, DfsFile};
use parking_lot::Mutex;

use crate::api::{run_chain, run_chain_shared, Collector};
use crate::context::TaskCtx;
use crate::integrity::IntegrityLog;
use crate::job::JobConf;
use crate::netsplit_log::PartitionLog;
use crate::recovery::RecoveryLog;
use crate::stats::{JobStats, PhaseStats, TaskStats};

/// First pause of a reducer's shuffle-fetch retry loop after a fetch
/// against a dead host fails; doubles per retry up to the cap below.
const FETCH_BACKOFF_BASE: SimDuration = SimDuration::from_nanos(500_000);
/// Backoff growth factor per failed fetch attempt.
const FETCH_BACKOFF_MULT: f64 = 2.0;
/// Upper bound on a single fetch-retry pause.
const FETCH_BACKOFF_CAP: SimDuration = SimDuration::from_nanos(8_000_000);

/// Result of a completed job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Handle of the DFS output file.
    pub output: DfsFile,
    /// Full statistics and timeline.
    pub stats: JobStats,
}

/// One executed (but not yet scheduled) map task.
#[derive(Debug)]
pub struct MapTaskExec {
    /// Task id within the phase.
    pub task_id: usize,
    /// Input chunk size in bytes (scheduler charges the read).
    pub input_bytes: u64,
    /// Input replica hosts.
    pub input_hosts: Vec<efind_cluster::NodeId>,
    /// Placement-independent cost of the task body.
    pub base_cost: SimDuration,
    /// Index-locality affinity declared by user code.
    pub affinity: Vec<efind_cluster::NodeId>,
    /// Extra cost when scheduled off the affinity nodes.
    pub affinity_penalty: SimDuration,
    /// Whether the task must run on its affinity nodes.
    pub hard_affinity: bool,
    /// The task's full output (pre-shuffle).
    pub output: Vec<Record>,
    /// Per-task statistics.
    pub stats: TaskStats,
}

/// All executed map tasks of a (partial or full) map phase.
#[derive(Debug, Default)]
pub struct MapPhaseExec {
    /// Executed tasks in task-id order.
    pub tasks: Vec<MapTaskExec>,
}

impl MapPhaseExec {
    /// Total bytes produced by these map tasks.
    pub fn output_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.output_bytes).sum()
    }

    /// Moves the per-task output record vectors out, in task order.
    pub fn take_outputs(&mut self) -> Vec<Vec<Record>> {
        self.tasks
            .iter_mut()
            .map(|t| std::mem::take(&mut t.output))
            .collect()
    }
}

/// One executed (but not yet scheduled) reduce task.
pub struct ReduceTaskExec {
    /// Reduce task id (= partition index).
    pub task_id: usize,
    /// Per-task statistics.
    pub stats: TaskStats,
    /// The schedulable task.
    pub spec: TaskSpec,
    /// The task's output records.
    pub output: Vec<Record>,
}

/// Outcome of a reduce phase.
pub struct ReduceOutcome {
    /// Reduce phase statistics and timeline.
    pub phase: PhaseStats,
    /// The written DFS output file.
    pub output: DfsFile,
    /// Bytes moved through the shuffle.
    pub shuffle_bytes: u64,
    /// Shuffle payloads that failed CRC verification at the reducer and
    /// were refetched from the source map output (0 under a quiet
    /// corruption plan).
    pub shuffle_refetches: u64,
    /// Virtual time the refetches cost (already charged into the
    /// affected reduce tasks' costs).
    pub shuffle_refetch_time: SimDuration,
}

/// Executes jobs against a cluster and DFS.
pub struct Runner<'a> {
    /// The simulated cluster.
    pub cluster: &'a Cluster,
    /// The distributed file system.
    pub dfs: &'a mut Dfs,
    /// Node-crash plan replayed against every schedule (quiet by default).
    chaos: ChaosPlan,
    /// Data-corruption plan consulted at the shuffle boundary and during
    /// the integrity sweep in [`Runner::finish`] (quiet by default).
    corruption: CorruptionPlan,
    /// Network-partition / link-slowdown plan replayed against every
    /// schedule (quiet by default). Unlike chaos crashes, partitions cut
    /// *visibility*, never state: isolated nodes keep running and the
    /// DFS is never mutated — replicas behind a partition still exist,
    /// they are just unreachable until the heal.
    netsplit: PartitionPlan,
    /// Heartbeat failure detector that turns partition windows into
    /// suspicions (and refutes them when nodes rejoin). Only consulted
    /// when the partition layer is armed.
    detector: DetectorConfig,
    /// Quiet/Armed classification of the chaos and corruption layers,
    /// resolved once at construction (and re-resolved by the `with_*`
    /// builders). Every per-record, per-payload, and per-task loop in
    /// this file dispatches on this profile *outside* the loop, so a
    /// configured-but-quiet runner takes byte-for-byte the plain path.
    profile: InjectionProfile,
}

impl<'a> Runner<'a> {
    /// Creates a runner with no node crashes.
    pub fn new(cluster: &'a Cluster, dfs: &'a mut Dfs) -> Self {
        Runner {
            cluster,
            dfs,
            chaos: ChaosPlan::none(),
            corruption: CorruptionPlan::none(),
            netsplit: PartitionPlan::none(),
            detector: DetectorConfig::default(),
            profile: InjectionProfile::quiet(),
        }
    }

    /// Creates a runner whose jobs suffer the node crashes of `chaos`.
    /// With a quiet plan this is exactly [`Runner::new`].
    pub fn with_chaos(cluster: &'a Cluster, dfs: &'a mut Dfs, chaos: ChaosPlan) -> Self {
        let profile = InjectionProfile::from_plans(&chaos, &CorruptionPlan::none());
        Runner {
            cluster,
            dfs,
            chaos,
            corruption: CorruptionPlan::none(),
            netsplit: PartitionPlan::none(),
            detector: DetectorConfig::default(),
            profile,
        }
    }

    /// Arms the data-corruption plan: installs it on the DFS (so chunk
    /// reads verify CRCs) and on the runner's shuffle boundary. With a
    /// quiet plan this changes nothing.
    pub fn with_corruption(mut self, plan: CorruptionPlan) -> Self {
        self.dfs.set_corruption(plan.clone());
        self.corruption = plan;
        self.profile = InjectionProfile::from_plans(&self.chaos, &self.corruption)
            .with_partition(&self.netsplit);
        self
    }

    /// Arms the network-partition plan and the failure detector that
    /// observes it. With a quiet plan this changes nothing — the runner
    /// takes byte-for-byte the plain path.
    ///
    /// Partition semantics differ from chaos crashes on purpose: nodes
    /// inside a partition keep executing (their results surface at the
    /// heal), the DFS is never mutated, and a partition that never heals
    /// while isolating every replica of needed data fails the job fast
    /// with [`Error::Partitioned`] rather than hanging on fetches that
    /// can never complete. DFS write placement is not modeled per node,
    /// so map-only outputs are not subject to partition visibility.
    pub fn with_netsplit(mut self, plan: PartitionPlan, detector: DetectorConfig) -> Self {
        self.netsplit = plan;
        self.detector = detector;
        self.profile = InjectionProfile::from_plans(&self.chaos, &self.corruption)
            .with_partition(&self.netsplit);
        self
    }

    /// The runner's crash plan.
    pub fn chaos(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// The runner's corruption plan.
    pub fn corruption(&self) -> &CorruptionPlan {
        &self.corruption
    }

    /// The runner's partition plan.
    pub fn netsplit(&self) -> &PartitionPlan {
        &self.netsplit
    }

    /// The runner's failure-detector configuration.
    pub fn detector(&self) -> &DetectorConfig {
        &self.detector
    }

    /// The once-per-job Quiet/Armed classification of the runner's
    /// injection layers.
    pub fn profile(&self) -> &InjectionProfile {
        &self.profile
    }

    /// True when shuffle payloads are verified at the reducer: the plan
    /// can corrupt them and verification is enabled.
    fn verifies_shuffle(&self) -> bool {
        self.corruption.verifies_shuffle()
    }

    /// The input chunks of a job, in order.
    pub fn chunks(&self, conf: &JobConf) -> Result<Vec<ChunkMeta>> {
        Ok(self.dfs.stat(&conf.input)?.chunks)
    }

    /// How many of `total` map tasks run in the first wave (one per slot).
    pub fn first_wave_count(&self, total: usize) -> usize {
        total.min(self.cluster.total_map_slots())
    }

    /// Executes the map computation over `chunks` (real data, virtual
    /// cost), numbering tasks from `base_task_id`. Tasks run in parallel on
    /// real threads; results are deterministic.
    pub fn execute_maps(
        &self,
        conf: &JobConf,
        chunks: &[ChunkMeta],
        base_task_id: usize,
    ) -> Result<MapPhaseExec> {
        let n = chunks.len();
        if n == 0 {
            return Ok(MapPhaseExec::default());
        }
        let results: Mutex<Vec<Option<Result<MapTaskExec>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n);
        let dfs = &*self.dfs;
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let exec = self.execute_one_map(conf, &chunks[i], base_task_id + i, dfs);
                    results.lock()[i] = Some(exec);
                });
            }
        })
        .map_err(|_| Error::Internal("map worker panicked".into()))?;
        let mut tasks = Vec::with_capacity(n);
        for slot in results.into_inner() {
            let exec = slot.ok_or_else(|| Error::Internal("map task produced no result".into()))?;
            tasks.push(exec?);
        }
        Ok(MapPhaseExec { tasks })
    }

    fn execute_one_map(
        &self,
        conf: &JobConf,
        chunk: &ChunkMeta,
        task_id: usize,
        dfs: &Dfs,
    ) -> Result<MapTaskExec> {
        let records = dfs.read_chunk_shared(&conf.input, chunk.index)?;
        let input_records = records.len() as u64;
        let mut ctx = TaskCtx::new(task_id);
        let mut output = run_chain_shared(&conf.map_chain, records, &mut ctx);
        // The map function's emit cost is per *emitted* record — count it
        // before the combiner shrinks the output, and charge the combiner
        // its own pass over those records.
        let emitted_records = output.len() as u64;
        let mut combiner_cost = SimDuration::ZERO;
        if let Some(combiner) = conf.combiner.as_ref().filter(|_| conf.has_reduce()) {
            output = run_combiner(combiner, output, &mut ctx);
            combiner_cost = conf.cpu_per_record * emitted_records;
        }
        if let Some(msg) = ctx.error() {
            return Err(Error::Internal(format!(
                "map task {task_id} of job {}: {msg}",
                conf.name
            )));
        }
        let output_records = output.len() as u64;
        let output_bytes: u64 = output.iter().map(Record::size_bytes).sum();

        let mut base_cost =
            ctx.charged() + conf.cpu_per_record * (input_records + emitted_records) + combiner_cost;
        if conf.has_reduce() {
            // Map-side spill of the shuffle input.
            base_cost += self.cluster.disk.write(output_bytes);
        }
        // Corrupt replicas discovered at the read boundary: each wasted
        // fetch (pull copy, CRC mismatch, move to the next replica) is
        // charged as a remote retrieve. The profile gate means a quiet
        // corruption layer pays not even the per-task ledger probe;
        // `chunk_integrity` is additionally `None` on clean chunks.
        if self.profile.corruption.is_armed() {
            if let Some(integ) = dfs.chunk_integrity(&conf.input, chunk.index) {
                base_cost += integ.reread_cost;
            }
        }

        ctx.counters
            .add("mr.map.input.records", input_records as i64);
        ctx.counters.add("mr.map.input.bytes", chunk.bytes as i64);
        ctx.counters
            .add("mr.map.output.records", output_records as i64);
        ctx.counters.add("mr.map.output.bytes", output_bytes as i64);

        let affinity = ctx.affinity().to_vec();
        let affinity_penalty = ctx.affinity_penalty();
        let hard_affinity = ctx.hard_affinity();
        let stats = TaskStats {
            task_id,
            input_records,
            input_bytes: chunk.bytes,
            output_records,
            output_bytes,
            compute_cost: base_cost,
            counters: ctx.counters,
            sketches: ctx.sketches,
        };
        Ok(MapTaskExec {
            task_id,
            input_bytes: chunk.bytes,
            input_hosts: chunk.hosts.clone(),
            base_cost,
            affinity,
            affinity_penalty,
            hard_affinity,
            output,
            stats,
        })
    }

    /// Schedules one phase's tasks, replaying the crash plan and — only
    /// when the partition layer is armed — the gray-failure plan on top.
    /// The hoisted branch keeps the quiet partition path literally the
    /// pre-partition code path.
    fn schedule_phase(&self, specs: &[TaskSpec], start: SimTime) -> Schedule {
        if self.profile.partition.is_armed() {
            schedule_phase_gray(
                self.cluster,
                specs,
                start,
                &self.chaos,
                &self.netsplit,
                &self.detector,
            )
        } else {
            schedule_phase_chaos(self.cluster, specs, start, &self.chaos)
        }
    }

    /// Schedules executed map tasks onto the cluster starting at `start`.
    pub fn schedule_maps(&self, exec: &MapPhaseExec, start: SimTime) -> Schedule {
        let specs: Vec<TaskSpec> = exec
            .tasks
            .iter()
            .map(|t| TaskSpec {
                id: t.task_id,
                kind: SlotKind::Map,
                base: t.base_cost,
                input_bytes: t.input_bytes,
                input_hosts: t.input_hosts.clone(),
                affinity: t.affinity.clone(),
                affinity_penalty: t.affinity_penalty,
                hard_affinity: t.hard_affinity,
            })
            .collect();
        self.schedule_phase(&specs, start)
    }

    /// Partitions per-source map outputs into the job's reduce buckets,
    /// returning the partitions and the total shuffled bytes.
    ///
    /// Sources partition independently (in parallel when there are several)
    /// and merge in source order, so the result — including record order
    /// within each bucket — is identical to a sequential pass.
    pub fn partition_for_reduce(
        &self,
        conf: &JobConf,
        sources: Vec<Vec<Record>>,
    ) -> (Vec<Vec<Record>>, u64) {
        let num_r = conf.num_reducers.max(1);
        let n = sources.len();
        // One source's per-reducer buckets plus its shuffled byte volume.
        type Partitioned = (Vec<Vec<Record>>, u64);
        let per_source: Vec<Partitioned> = if n > 1 {
            let inputs: Vec<Mutex<Option<Vec<Record>>>> =
                sources.into_iter().map(|s| Mutex::new(Some(s))).collect();
            let outputs: Mutex<Vec<Option<Partitioned>>> =
                Mutex::new((0..n).map(|_| None).collect());
            let next = AtomicUsize::new(0);
            let workers = thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
                .min(n);
            crossbeam::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let source = inputs[i].lock().take().unwrap_or_default();
                        outputs.lock()[i] = Some(partition_one(conf, num_r, source));
                    });
                }
            })
            // efind-lint: allow(panic, a panicked scoped worker already tore down the run; propagating the panic is the contract)
            .expect("partition worker panicked");
            outputs
                .into_inner()
                .into_iter()
                // efind-lint: allow(panic, every slot is filled by construction; an empty one is a runner bug, not a user error)
                .map(|slot| slot.expect("partition task produced no result"))
                .collect()
        } else {
            sources
                .into_iter()
                .map(|s| partition_one(conf, num_r, s))
                .collect()
        };

        let mut partitions: Vec<Vec<Record>> = (0..num_r)
            .map(|p| Vec::with_capacity(per_source.iter().map(|(ps, _)| ps[p].len()).sum()))
            .collect();
        let mut shuffle_bytes = 0u64;
        for (ps, bytes) in per_source {
            shuffle_bytes += bytes;
            for (p, recs) in ps.into_iter().enumerate() {
                partitions[p].extend(recs);
            }
        }
        (partitions, shuffle_bytes)
    }

    /// Executes (real computation, no scheduling) the reduce tasks for the
    /// given `(task_id, input)` partitions. Used directly by the adaptive
    /// optimizer to run the reduce phase wave by wave (Fig. 10(b)).
    pub fn execute_reduce_partitions(
        &self,
        conf: &JobConf,
        partitions: &[(usize, &[Record])],
    ) -> Result<Vec<ReduceTaskExec>> {
        self.execute_reduce_partitions_owned(
            conf,
            partitions
                .iter()
                .map(|&(id, input)| (id, input.to_vec()))
                .collect(),
        )
    }

    /// Owned variant of [`Runner::execute_reduce_partitions`]: each reduce
    /// task takes its partition by move, so the sort and group machinery
    /// works on the shuffle buffers directly instead of a private copy.
    pub fn execute_reduce_partitions_owned(
        &self,
        conf: &JobConf,
        partitions: Vec<(usize, Vec<Record>)>,
    ) -> Result<Vec<ReduceTaskExec>> {
        let n = partitions.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        type ReduceExec = Result<(TaskStats, TaskSpec, Vec<Record>)>;
        type OwnedPartition = (usize, Vec<Record>);
        let inputs: Vec<Mutex<Option<OwnedPartition>>> = partitions
            .into_iter()
            .map(|p| Mutex::new(Some(p)))
            .collect();
        let results: Mutex<Vec<Option<ReduceExec>>> = Mutex::new((0..n).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
            .min(n);
        crossbeam::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let Some((task_id, input)) = inputs[i].lock().take() else {
                        break;
                    };
                    let out = self.execute_one_reduce(conf, task_id, input);
                    results.lock()[i] = Some(out);
                });
            }
        })
        .map_err(|_| Error::Internal("reduce worker panicked".into()))?;
        let mut tasks = Vec::with_capacity(n);
        for slot in results.into_inner() {
            let (stats, spec, output) =
                slot.ok_or_else(|| Error::Internal("reduce task produced no result".into()))??;
            tasks.push(ReduceTaskExec {
                task_id: spec.id,
                stats,
                spec,
                output,
            });
        }
        Ok(tasks)
    }

    /// Runs the reduce phase over per-source map outputs (in source order),
    /// writes the job output file, and returns the outcome.
    ///
    /// `sources` is one record vector per completed map task; the shuffle
    /// partitions each with the job's partitioner. This entry point is also
    /// how the adaptive optimizer merges a completed first wave (old plan)
    /// with the new plan's map outputs — Fig. 10(a).
    pub fn run_reduce_from(
        &mut self,
        conf: &JobConf,
        sources: Vec<Vec<Record>>,
        start: SimTime,
    ) -> Result<ReduceOutcome> {
        if !conf.has_reduce() {
            return Err(Error::InvalidConfig(format!(
                "job {} has no reduce phase",
                conf.name
            )));
        }
        // Shuffle-boundary verification happens while the per-source map
        // outputs still exist (the merge below loses source identity):
        // each (source, partition) payload is checksummed as the sender
        // would send it; a corrupted transfer fails the reducer-side CRC
        // and is refetched from the in-memory source output.
        let (extra_fetch, shuffle_refetches, shuffle_refetch_time) =
            self.verify_shuffle_payloads(conf, &sources);
        let (partitions, shuffle_bytes) = self.partition_for_reduce(conf, sources);
        let mut execs = self
            .execute_reduce_partitions_owned(conf, partitions.into_iter().enumerate().collect())?;
        for e in &mut execs {
            if let Some(extra) = extra_fetch.get(e.task_id).filter(|d| !d.is_zero()) {
                e.spec.base += *extra;
                e.stats.compute_cost += *extra;
            }
        }

        let mut tasks = Vec::with_capacity(execs.len());
        let mut specs = Vec::with_capacity(execs.len());
        let mut outputs = Vec::with_capacity(execs.len());
        for e in execs {
            tasks.push(e.stats);
            specs.push(e.spec);
            outputs.push(e.output);
        }
        let schedule = self.schedule_phase(&specs, start);
        let all_output: Vec<Record> = outputs.into_iter().flatten().collect();
        let output = match conf.output_chunks {
            Some(n) => self.dfs.write_file_with_chunks(&conf.output, all_output, n),
            None => self.dfs.write_file(&conf.output, all_output),
        };
        Ok(ReduceOutcome {
            phase: PhaseStats { tasks, schedule },
            output,
            shuffle_bytes,
            shuffle_refetches,
            shuffle_refetch_time,
        })
    }

    /// Verifies every (map source, reduce partition) shuffle payload
    /// against its sender-side CRC-32 and prices the refetch of corrupted
    /// transfers. Returns per-partition extra fetch time, the refetch
    /// count, and the total refetch time. Entirely skipped (three zeros)
    /// unless the corruption plan can hit the shuffle.
    fn verify_shuffle_payloads(
        &self,
        conf: &JobConf,
        sources: &[Vec<Record>],
    ) -> (Vec<SimDuration>, u64, SimDuration) {
        let num_r = conf.num_reducers.max(1);
        if !self.verifies_shuffle() {
            return (Vec::new(), 0, SimDuration::ZERO);
        }
        let mut extra = vec![SimDuration::ZERO; num_r];
        let mut refetches = 0u64;
        let mut refetch_time = SimDuration::ZERO;
        for (s, source) in sources.iter().enumerate() {
            // The payload each reducer fetches from this source, encoded
            // exactly as the sender serializes it.
            let mut bufs: Vec<Vec<u8>> = (0..num_r).map(|_| Vec::new()).collect();
            let mut bytes = vec![0u64; num_r];
            for rec in source {
                let p = conf.partitioner.partition(&rec.key, num_r);
                rec.key.encode_into(&mut bufs[p]);
                rec.value.encode_into(&mut bufs[p]);
                bytes[p] += rec.size_bytes();
            }
            for (p, buf) in bufs.iter_mut().enumerate() {
                if buf.is_empty() {
                    continue;
                }
                let sent = crc32(buf);
                if !self.corruption.shuffle_corrupt(&conf.name, s, p) {
                    continue;
                }
                // The transfer flipped a byte; the reducer's CRC check
                // catches it and the payload is fetched again (the map
                // output is still in memory at the source — shuffle
                // corruption is always recoverable).
                let flip = s % buf.len();
                buf[flip] ^= 0x55;
                if crc32(buf) == sent {
                    continue; // undetectable in principle; never for 1-byte flips
                }
                refetches += 1;
                let cost = self.cluster.network.volume(bytes[p]);
                extra[p] += cost;
                refetch_time += cost;
            }
        }
        (extra, refetches, refetch_time)
    }

    fn execute_one_reduce(
        &self,
        conf: &JobConf,
        task_id: usize,
        input: Vec<Record>,
    ) -> Result<(TaskStats, TaskSpec, Vec<Record>)> {
        let input_records = input.len() as u64;
        let input_bytes: u64 = input.iter().map(Record::size_bytes).sum();
        let mut sorted = input;
        // Stable sort: equal-key order is observable (it sets group value
        // order and pass-through output order, and record sizes differ, so
        // reordering shifts downstream chunk boundaries and virtual costs).
        sorted.sort_by(|a, b| a.key.cmp(&b.key));

        let mut ctx = TaskCtx::new(task_id);
        let mut reduced: Vec<Record> = Vec::new();
        {
            let mut reducer = conf.reducer.as_ref().map(|f| f());
            // Drain the sorted buffer group by group: keys and values move
            // into the reducer, no per-record clones.
            let mut rest = sorted.into_iter().peekable();
            while let Some(first) = rest.next() {
                let key = first.key;
                let mut values = vec![first.value];
                while let Some(rec) = rest.next_if(|r| r.key == key) {
                    values.push(rec.value);
                }
                match reducer.as_mut() {
                    Some(red) => red.reduce(key, values, &mut reduced, &mut ctx),
                    None => {
                        // Identity reduce: grouped pass-through. Every
                        // emitted record needs its own key; the last one
                        // takes ownership.
                        let mut key = Some(key);
                        let last = values.len() - 1;
                        for (i, v) in values.into_iter().enumerate() {
                            let k = if i == last {
                                // efind-lint: allow(panic, key is Some until the final iteration by loop construction)
                                key.take().expect("group key moved early")
                            } else {
                                // efind-lint: allow(panic, key is Some until the final iteration by loop construction)
                                key.clone().expect("group key moved early")
                            };
                            reduced.collect(Record { key: k, value: v });
                        }
                    }
                }
            }
            if let Some(red) = reducer.as_mut() {
                red.flush(&mut reduced, &mut ctx);
            }
        }
        let output = run_chain(&conf.reduce_post, reduced, &mut ctx);
        if let Some(msg) = ctx.error() {
            return Err(Error::Internal(format!(
                "reduce task {task_id} of job {}: {msg}",
                conf.name
            )));
        }
        let output_records = output.len() as u64;
        let output_bytes: u64 = output.iter().map(Record::size_bytes).sum();

        // Shuffle transfer (remote fraction), merge spill, and the DFS
        // write of the task's output slice.
        let nodes = self.cluster.num_nodes() as u64;
        let remote_bytes = input_bytes * (nodes.saturating_sub(1)) / nodes.max(1);
        let mut base_cost = ctx.charged()
            + conf.cpu_per_record * (input_records + output_records)
            + self.cluster.network.volume(remote_bytes)
            + self.cluster.disk.write(input_bytes)
            + self.cluster.disk.read(input_bytes)
            + self.dfs.store_cost(output_bytes);
        // Sorting cost: n log2 n comparisons at the per-record CPU rate
        // scaled down (a comparison is much cheaper than a record pass).
        if input_records > 1 {
            let logn = (input_records as f64).log2();
            base_cost += conf
                .cpu_per_record
                .mul_f64(input_records as f64 * logn / 16.0);
        }

        ctx.counters
            .add("mr.reduce.input.records", input_records as i64);
        ctx.counters
            .add("mr.reduce.input.bytes", input_bytes as i64);
        ctx.counters
            .add("mr.reduce.output.records", output_records as i64);
        ctx.counters
            .add("mr.reduce.output.bytes", output_bytes as i64);

        let spec = TaskSpec {
            id: task_id,
            kind: SlotKind::Reduce,
            base: base_cost,
            input_bytes: 0, // shuffle reads charged in base (scattered sources)
            input_hosts: Vec::new(),
            affinity: ctx.affinity().to_vec(),
            affinity_penalty: ctx.affinity_penalty(),
            hard_affinity: ctx.hard_affinity(),
        };
        let stats = TaskStats {
            task_id,
            input_records,
            input_bytes,
            output_records,
            output_bytes,
            compute_cost: base_cost,
            counters: ctx.counters,
            sketches: ctx.sketches,
        };
        Ok((stats, spec, output))
    }

    /// End-of-job integrity sweep over the job's input chunks. A map task
    /// that hit a corrupt replica already paid the wasted fetch inside its
    /// own cost ([`Dfs::chunk_integrity`]); here the runner records those
    /// discoveries in the ledger, quarantines every replica that fails CRC
    /// verification out of its chunk's host set, and re-replicates the
    /// survivors back up to the replication target through the same
    /// background repair path node crashes use. Quiet plans — and plans
    /// with verification disabled, which cannot *detect* anything — return
    /// the empty ledger untouched.
    pub fn integrity_sweep(&mut self, conf: &JobConf) -> IntegrityLog {
        let mut log = IntegrityLog::default();
        if !self.corruption.verifies_chunks() {
            return log;
        }
        let Ok(meta) = self.dfs.stat(&conf.input) else {
            return log;
        };
        let chunk_ids: Vec<usize> = meta.chunks.iter().map(|c| c.index).collect();
        for idx in chunk_ids {
            let Some(integ) = self.dfs.chunk_integrity(&conf.input, idx) else {
                continue;
            };
            log.corrupt_chunks.push((conf.input.clone(), idx));
            log.chunk_rereads += integ.corrupt.len() as u64;
            log.reread_time += integ.reread_cost;
            log.quarantined_replicas +=
                self.dfs.quarantine_corrupt_replicas(&conf.input, idx).len();
        }
        if log.quarantined_replicas > 0 {
            let rep = self.dfs.re_replicate();
            log.repaired_chunks += rep.chunks;
            log.repaired_bytes += rep.bytes;
            log.repair_time += rep.duration;
        }
        log
    }

    /// Records the node-level gray-failure outcomes of one job into its
    /// ledger: plan events inside the job window, every suspicion's
    /// resolution, and the re-replication intents the detector raised —
    /// *pending* on suspicion, *cancelled* on rejoin, and priced (but
    /// never applied to DFS state: the isolated replicas still exist) for
    /// confirmed-gone nodes, against the job's input chunks they host.
    fn account_gray_nodes(
        &self,
        conf: &JobConf,
        suspicions: &[Suspicion],
        finished: SimTime,
        gray: &mut PartitionLog,
    ) {
        gray.events = self
            .netsplit
            .events()
            .iter()
            .filter(|e| e.start < finished)
            .count();
        gray.slow_links = self
            .netsplit
            .slow_links()
            .iter()
            .filter(|l| l.start < finished)
            .count();
        let meta = self.dfs.stat(&conf.input).ok();
        for s in suspicions {
            if s.suspect_at >= finished {
                continue;
            }
            gray.suspected += 1;
            gray.rereplication_pending += 1;
            match s.verdict {
                Verdict::Confirmed => {
                    gray.confirmed += 1;
                    let Some(meta) = meta.as_ref() else { continue };
                    for chunk in &meta.chunks {
                        if chunk.hosts.contains(&s.node) {
                            gray.rereplicated_chunks += 1;
                            gray.rereplicated_bytes += chunk.bytes;
                            gray.rereplication_time += self.cluster.network.volume(chunk.bytes)
                                + self.cluster.disk.write(chunk.bytes);
                        }
                    }
                }
                Verdict::Refuted { .. } => {
                    if s.false_positive {
                        gray.false_positives += 1;
                    } else {
                        gray.refuted += 1;
                    }
                    gray.rereplication_cancelled += 1;
                }
            }
        }
    }

    /// Runs a full job starting at virtual time `start`.
    pub fn run(&mut self, conf: &JobConf, start: SimTime) -> Result<JobResult> {
        let chunks = self.chunks(conf)?;
        let mut exec = self.execute_maps(conf, &chunks, 0)?;
        self.finish(conf, &mut exec, start)
    }

    /// Schedules an executed map phase, runs the reduce phase (if any),
    /// writes the output, and assembles the result. Consumes the map
    /// outputs held in `exec`.
    ///
    /// Under a non-quiet chaos plan this is also where node crashes are
    /// *applied*: deaths inside the map window strip the dead node's DFS
    /// replicas, completed map tasks whose node-local outputs died with a
    /// node are re-scheduled as recompute waves, reducers retry their
    /// fetches with backoff until the recomputed outputs exist, and the
    /// DFS re-replicates in the background — all recorded in the job's
    /// [`RecoveryLog`]. Map task ids are assumed to equal their input
    /// chunk indices (true for every runner entry point), which lets the
    /// recompute path find a task's surviving input replicas.
    pub fn finish(
        &mut self,
        conf: &JobConf,
        exec: &mut MapPhaseExec,
        start: SimTime,
    ) -> Result<JobResult> {
        // Map-only jobs pay the DFS store from within the map tasks.
        if !conf.has_reduce() {
            for t in &mut exec.tasks {
                let extra = self.dfs.store_cost(t.stats.output_bytes);
                t.base_cost += extra;
                t.stats.compute_cost += extra;
            }
        }
        let map_schedule = self.schedule_maps(exec, start);
        let mut map_end = map_schedule.makespan;

        let mut recovery = RecoveryLog {
            crashed_attempts: map_schedule.crashed_attempts,
            ..RecoveryLog::default()
        };
        // The instant reducers would first fetch map outputs if nothing
        // crashed — the reference point for fetch-retry backoff.
        let fetch_ready = map_end;
        // The surviving attempt of every map task, updated as recompute
        // waves replace lost ones.
        let mut attempts = map_schedule.assignments.clone();
        let mut gray = PartitionLog::default();
        // Node-level detector outcomes, assessed once per job: the phase
        // schedules replay only task-level effects, so a suspicion seen by
        // both the map and the reduce schedule is never double-counted.
        let mut suspicions: Vec<Suspicion> = Vec::new();
        if self.profile.partition.is_armed() {
            fold_partition_replay(&mut gray, &map_schedule.partition);
            suspicions = self
                .detector
                .assess_all(&self.netsplit, self.cluster.num_nodes());
            // Fail fast — never hang — when a partition that never heals
            // has isolated every replica host of a chunk some attempt
            // still needs to read. The replicas are intact (partitions
            // never mutate the DFS), just unreachable forever, which is
            // why this is `Partitioned` and not `DataLoss`.
            let meta = self.dfs.stat(&conf.input)?;
            for a in &attempts {
                let Some(chunk) = meta.chunks.get(a.task_id) else {
                    continue;
                };
                let mut cut = SimTime::ZERO;
                let mut all_isolated = !chunk.hosts.is_empty();
                for h in &chunk.hosts {
                    match self.netsplit.isolated_forever_from(*h) {
                        Some(s) => cut = cut.max(s),
                        None => {
                            all_isolated = false;
                            break;
                        }
                    }
                }
                if all_isolated && a.end > cut {
                    return Err(Error::Partitioned(format!(
                        "job {}: map task {} needs chunk {} of {} but a partition \
                         that never heals has isolated every replica host",
                        conf.name, a.task_id, a.task_id, conf.input
                    )));
                }
            }
        }
        let mut deferred: Vec<CrashEvent> = Vec::new();
        // One branch on the hoisted classification replaces every
        // per-event / per-attempt chaos check for quiet runs.
        if self.profile.chaos.is_armed() {
            for e in self.chaos.events().to_vec() {
                if e.at >= map_end {
                    // Falls past the (current) map phase; it can still hit
                    // the reduce phase, handled after the reduce schedule.
                    deferred.push(e);
                    continue;
                }
                recovery.crashes.push(e);
                let lost_chunks = self.dfs.crash_node(e.node);
                // A surviving attempt that (re)ran past the crash re-reads
                // its input; losing that input's last replica is fatal.
                for (name, idx) in &lost_chunks {
                    if name == &conf.input {
                        if let Some(a) = attempts.iter().find(|a| a.task_id == *idx) {
                            if a.end > e.at {
                                return Err(Error::DataLoss(format!(
                                    "job {}: map task {} needs chunk {} of {} but its \
                                     last replica died with node {}",
                                    conf.name, a.task_id, idx, conf.input, e.node
                                )));
                            }
                        }
                    }
                }
                // Lost-output recompute: completed map outputs are
                // node-local spills and die with the node; the reduce has
                // not fetched anything yet (fetches start at the end of
                // the map phase), so every completed task on the dead node
                // must re-run.
                if conf.has_reduce() {
                    let lost_ids: Vec<usize> = attempts
                        .iter()
                        .filter(|a| a.node == e.node && a.end <= e.at)
                        .map(|a| a.task_id)
                        .collect();
                    if !lost_ids.is_empty() {
                        let meta = self.dfs.stat(&conf.input)?;
                        let mut specs = Vec::with_capacity(lost_ids.len());
                        for id in &lost_ids {
                            let t =
                                exec.tasks
                                    .iter()
                                    .find(|t| t.task_id == *id)
                                    .ok_or_else(|| {
                                        Error::Internal(format!(
                                            "recompute of unknown map task {id}"
                                        ))
                                    })?;
                            let chunk = meta.chunks.get(*id).ok_or_else(|| {
                                Error::Internal(format!(
                                    "map task {id} has no chunk {id} in {}",
                                    conf.input
                                ))
                            })?;
                            if chunk.hosts.is_empty() {
                                return Err(Error::DataLoss(format!(
                                    "job {}: recomputing map task {id} needs chunk {id} of {} \
                                     but its last replica died with node {}",
                                    conf.name, conf.input, e.node
                                )));
                            }
                            specs.push(TaskSpec {
                                id: *id,
                                kind: SlotKind::Map,
                                base: t.base_cost,
                                input_bytes: t.input_bytes,
                                input_hosts: chunk.hosts.clone(),
                                affinity: t.affinity.clone(),
                                affinity_penalty: t.affinity_penalty,
                                hard_affinity: t.hard_affinity,
                            });
                        }
                        let wave = schedule_phase_chaos(self.cluster, &specs, e.at, &self.chaos);
                        recovery.recompute_waves += 1;
                        recovery.crashed_attempts += wave.crashed_attempts;
                        recovery
                            .recomputed_map_tasks
                            .extend(lost_ids.iter().copied());
                        for wa in wave.assignments {
                            if let Some(a) = attempts.iter_mut().find(|a| a.task_id == wa.task_id) {
                                *a = wa;
                            }
                        }
                        map_end = map_end.max(wave.makespan);
                    }
                }
                // Background re-replication of under-replicated chunks,
                // priced on the network/disk models but not serialized
                // into the job's makespan.
                let rep = self.dfs.re_replicate();
                recovery.rereplicated_chunks += rep.chunks;
                recovery.rereplicated_bytes += rep.bytes;
                recovery.rereplication_time += rep.duration;
            }
            recovery.recomputed_map_tasks.sort_unstable();
        }

        // Permanent partitions strand completed node-local map outputs:
        // once the detector confirms a node gone, every map task that
        // completed on it before the cut re-runs on reachable nodes — the
        // gray analog of the chaos recompute wave. The stranded outputs
        // still exist on the isolated node (nothing is lost, so no DFS
        // mutation and no replica repair); they are simply unreachable
        // for the rest of the job.
        let mut gray_recomputed = false;
        if self.profile.partition.is_armed() && conf.has_reduce() {
            for s in &suspicions {
                if !matches!(s.verdict, Verdict::Confirmed) {
                    continue;
                }
                let Some((cut, _)) = self.netsplit.isolation_window(s.node) else {
                    continue;
                };
                let lost_ids: Vec<usize> = attempts
                    .iter()
                    .filter(|a| a.node == s.node && a.end <= cut)
                    .map(|a| a.task_id)
                    .collect();
                if lost_ids.is_empty() {
                    continue;
                }
                let meta = self.dfs.stat(&conf.input)?;
                let mut specs = Vec::with_capacity(lost_ids.len());
                for id in &lost_ids {
                    let t = exec
                        .tasks
                        .iter()
                        .find(|t| t.task_id == *id)
                        .ok_or_else(|| {
                            Error::Internal(format!("gray recompute of unknown map task {id}"))
                        })?;
                    let chunk = meta.chunks.get(*id).ok_or_else(|| {
                        Error::Internal(format!(
                            "map task {id} has no chunk {id} in {}",
                            conf.input
                        ))
                    })?;
                    if chunk
                        .hosts
                        .iter()
                        .all(|h| self.netsplit.isolated_forever_from(*h).is_some())
                    {
                        return Err(Error::Partitioned(format!(
                            "job {}: recomputing map task {id} needs chunk {id} of {} \
                             but a partition that never heals has isolated every \
                             replica host",
                            conf.name, conf.input
                        )));
                    }
                    specs.push(TaskSpec {
                        id: *id,
                        kind: SlotKind::Map,
                        base: t.base_cost,
                        input_bytes: t.input_bytes,
                        input_hosts: chunk.hosts.clone(),
                        affinity: t.affinity.clone(),
                        affinity_penalty: t.affinity_penalty,
                        hard_affinity: t.hard_affinity,
                    });
                }
                let wave = self.schedule_phase(&specs, s.suspect_at);
                fold_partition_replay(&mut gray, &wave.partition);
                gray.replaced_tasks += lost_ids.len() as u64;
                for wa in wave.assignments {
                    if let Some(a) = attempts.iter_mut().find(|a| a.task_id == wa.task_id) {
                        *a = wa;
                    }
                }
                map_end = map_end.max(wave.makespan);
                gray_recomputed = true;
            }
        }

        // Shuffle-fetch retry: reducers began fetching at the original map
        // phase end, found dead hosts, and back off exponentially until
        // the recomputed outputs become available.
        let mut reduce_start = map_end;
        if conf.has_reduce() && !recovery.recomputed_map_tasks.is_empty() {
            let mut t = fetch_ready;
            let mut tries: u32 = 0;
            while t < map_end {
                let pause = SimDuration::exp_backoff(
                    FETCH_BACKOFF_BASE,
                    FETCH_BACKOFF_MULT,
                    tries,
                    FETCH_BACKOFF_CAP,
                );
                recovery.fetch_backoff += pause;
                t += pause;
                tries += 1;
            }
            recovery.fetch_retries = tries as u64 * conf.num_reducers.max(1) as u64;
            reduce_start = map_end.max(t);
        }

        // Partition fetch failover: a reducer whose map outputs sit behind
        // a transient partition at fetch time backs off until the heal —
        // the outputs are unreachable, not lost, so no recompute fires.
        // Recomputed stranded outputs (never-healing partitions) are
        // waited for the same way.
        if self.profile.partition.is_armed() && conf.has_reduce() {
            let mut wait_until = if gray_recomputed {
                map_end
            } else {
                fetch_ready
            };
            for a in &attempts {
                if !self.netsplit.is_isolated_at(a.node, fetch_ready) {
                    continue;
                }
                match self.netsplit.isolation_window(a.node).and_then(|(_, h)| h) {
                    Some(heal) => wait_until = wait_until.max(heal),
                    None => {
                        return Err(Error::Partitioned(format!(
                            "job {}: map outputs of task {} sit on node {} behind \
                             a partition that never heals",
                            conf.name, a.task_id, a.node.0
                        )))
                    }
                }
            }
            if wait_until > fetch_ready {
                let mut t = fetch_ready;
                let mut tries: u32 = 0;
                while t < wait_until {
                    let pause = SimDuration::exp_backoff(
                        FETCH_BACKOFF_BASE,
                        FETCH_BACKOFF_MULT,
                        tries,
                        FETCH_BACKOFF_CAP,
                    );
                    gray.failover_wait += pause;
                    t += pause;
                    tries += 1;
                }
                gray.failover_fetches = tries as u64 * conf.num_reducers.max(1) as u64;
                reduce_start = reduce_start.max(t);
            }
        }

        let mut counters = crate::counters::Counters::new();
        let mut sketches = crate::counters::Sketches::new();
        for t in &exec.tasks {
            counters.merge(&t.stats.counters);
            sketches.merge(&t.stats.sketches);
        }

        let map_stats = PhaseStats {
            tasks: exec.tasks.iter().map(|t| t.stats.clone()).collect(),
            schedule: map_schedule,
        };

        if conf.has_reduce() {
            let sources = exec.take_outputs();
            let outcome = self.run_reduce_from(conf, sources, reduce_start)?;
            for t in &outcome.phase.tasks {
                counters.merge(&t.counters);
                sketches.merge(&t.sketches);
            }
            recovery.crashed_attempts += outcome.phase.schedule.crashed_attempts;
            if self.profile.partition.is_armed() {
                fold_partition_replay(&mut gray, &outcome.phase.schedule.partition);
            }
            let finished = outcome.phase.schedule.makespan.max(reduce_start);
            // Crashes that fell after the map phase but inside the reduce
            // window still take DFS replicas with them (the reduce schedule
            // already re-placed its own attempts via the chaos replay).
            for e in deferred {
                if e.at <= finished {
                    recovery.crashes.push(e);
                    self.dfs.crash_node(e.node);
                    let rep = self.dfs.re_replicate();
                    recovery.rereplicated_chunks += rep.chunks;
                    recovery.rereplicated_bytes += rep.bytes;
                    recovery.rereplication_time += rep.duration;
                }
            }
            let mut integrity = self.integrity_sweep(conf);
            integrity.shuffle_refetches = outcome.shuffle_refetches;
            integrity.shuffle_refetch_time = outcome.shuffle_refetch_time;
            // Ledger bookkeeping only for armed layers: a quiet layer's
            // ledger is all zeros and add_counters writes nothing for
            // zeros, so skipping it is observably identical and saves the
            // full counter-map scan on every quiet job.
            if self.profile.corruption.is_armed() {
                integrity.collect_lookup_counters(&counters);
                integrity.add_counters(&mut counters);
            }
            if self.profile.chaos.is_armed() {
                recovery.add_counters(&mut counters);
            }
            if self.profile.partition.is_armed() {
                self.account_gray_nodes(conf, &suspicions, finished, &mut gray);
                gray.add_counters(&mut counters);
            }
            let output_bytes = outcome.output.total_bytes();
            Ok(JobResult {
                output: outcome.output,
                stats: JobStats {
                    name: conf.name.clone(),
                    started: start,
                    finished,
                    map: map_stats,
                    reduce: Some(outcome.phase),
                    counters,
                    sketches,
                    shuffle_bytes: outcome.shuffle_bytes,
                    output_bytes,
                    recovery,
                    integrity,
                    partition: gray,
                },
            })
        } else {
            let all_output: Vec<Record> = exec.take_outputs().into_iter().flatten().collect();
            let output = match conf.output_chunks {
                Some(n) => self.dfs.write_file_with_chunks(&conf.output, all_output, n),
                None => self.dfs.write_file(&conf.output, all_output),
            };
            let mut integrity = self.integrity_sweep(conf);
            if self.profile.corruption.is_armed() {
                integrity.collect_lookup_counters(&counters);
                integrity.add_counters(&mut counters);
            }
            if self.profile.chaos.is_armed() {
                recovery.add_counters(&mut counters);
            }
            if self.profile.partition.is_armed() {
                self.account_gray_nodes(conf, &suspicions, map_end, &mut gray);
                gray.add_counters(&mut counters);
            }
            let output_bytes = output.total_bytes();
            Ok(JobResult {
                output,
                stats: JobStats {
                    name: conf.name.clone(),
                    started: start,
                    finished: map_end,
                    map: map_stats,
                    reduce: None,
                    counters,
                    sketches,
                    shuffle_bytes: 0,
                    output_bytes,
                    recovery,
                    integrity,
                    partition: gray,
                },
            })
        }
    }
}

/// Folds one phase schedule's task-level partition effects into the job
/// ledger. Node-level outcomes (suspicions, re-replication intents) are
/// intentionally absent from the replay — [`Runner::finish`] derives them
/// once per job so two phases never double-count a suspicion.
fn fold_partition_replay(gray: &mut PartitionLog, replay: &PartitionReplay) {
    gray.replaced_tasks += replay.replaced_tasks;
    gray.stalled_tasks += replay.stalled_tasks;
    gray.stall += replay.stall;
    gray.orphan_results += replay.orphan_results;
}

/// Partitions one map task's output into `num_r` reduce buckets, returning
/// the buckets and the source's shuffled bytes.
fn partition_one(conf: &JobConf, num_r: usize, source: Vec<Record>) -> (Vec<Vec<Record>>, u64) {
    let mut partitions: Vec<Vec<Record>> = (0..num_r).map(|_| Vec::new()).collect();
    let mut bytes = 0u64;
    for rec in source {
        bytes += rec.size_bytes();
        let p = conf.partitioner.partition(&rec.key, num_r);
        partitions[p].push(rec);
    }
    (partitions, bytes)
}

/// Runs the combiner over one map task's output: groups by key locally
/// and applies the combining reduce function (Hadoop's map-side combine).
/// The sorted buffer is drained group by group — keys and values move into
/// the combiner without per-record clones.
fn run_combiner(
    combiner: &crate::api::ReducerFactory,
    mut records: Vec<Record>,
    ctx: &mut TaskCtx,
) -> Vec<Record> {
    // Stable for the same reason as the reduce-side sort: combiners may be
    // order-sensitive and equal-key order is observable downstream.
    records.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out: Vec<Record> = Vec::new();
    let mut c = combiner();
    let mut rest = records.into_iter().peekable();
    while let Some(first) = rest.next() {
        let key = first.key;
        let mut values = vec![first.value];
        while let Some(rec) = rest.next_if(|r| r.key == key) {
            values.push(rec.value);
        }
        c.reduce(key, values, &mut out, ctx);
    }
    c.flush(&mut out, ctx);
    out
}

/// Convenience wrapper: runs `conf` from time zero.
pub fn run_job(cluster: &Cluster, dfs: &mut Dfs, conf: &JobConf) -> Result<JobResult> {
    Runner::new(cluster, dfs).run(conf, SimTime::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{identity_mapper, mapper_fn, reducer_fn};
    use efind_common::Datum;
    use efind_dfs::DfsConfig;

    fn setup(records: Vec<Record>) -> (Cluster, Dfs) {
        let cluster = Cluster::builder()
            .nodes(4)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication: 2,
                seed: 9,
            },
        );
        dfs.write_file("input", records);
        (cluster, dfs)
    }

    fn words() -> Vec<Record> {
        let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
        text.iter()
            .cycle()
            .take(200)
            .enumerate()
            .map(|(i, w)| Record::new(i as i64, *w))
            .collect()
    }

    fn wordcount_conf() -> JobConf {
        JobConf::new("wordcount", "input", "out")
            .add_mapper(mapper_fn(|rec, out, _ctx| {
                out.collect(Record::new(rec.value.clone(), 1i64));
            }))
            .with_reducer(
                reducer_fn(|key, values, out, _ctx| {
                    let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                    out.collect(Record::new(key, total));
                }),
                3,
            )
    }

    #[test]
    fn wordcount_end_to_end() {
        let (cluster, mut dfs) = setup(words());
        let res = run_job(&cluster, &mut dfs, &wordcount_conf()).unwrap();
        let mut out = dfs.read_file("out").unwrap();
        out.sort();
        let counts: Vec<(String, i64)> = out
            .iter()
            .map(|r| {
                (
                    r.key.as_text().unwrap().to_owned(),
                    r.value.as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(counts.len(), 5);
        let the = counts.iter().find(|(w, _)| w == "the").unwrap().1;
        assert_eq!(the, 75); // 3 of every 8 words, 200 words
        assert!(res.stats.makespan() > SimDuration::ZERO);
        assert_eq!(res.stats.counters.get("mr.map.input.records"), 200);
        assert_eq!(res.stats.counters.get("mr.reduce.output.records"), 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let (cluster, mut dfs1) = setup(words());
        let r1 = run_job(&cluster, &mut dfs1, &wordcount_conf()).unwrap();
        let (_, mut dfs2) = setup(words());
        let r2 = run_job(&cluster, &mut dfs2, &wordcount_conf()).unwrap();
        assert_eq!(r1.stats.makespan(), r2.stats.makespan());
        assert_eq!(r1.stats.shuffle_bytes, r2.stats.shuffle_bytes);
        assert_eq!(
            r1.stats.counters.iter_sorted(),
            r2.stats.counters.iter_sorted()
        );
        assert_eq!(
            dfs1.read_file("out").unwrap(),
            dfs2.read_file("out").unwrap()
        );
    }

    #[test]
    fn map_only_job_writes_output() {
        let (cluster, mut dfs) = setup(words());
        let conf = JobConf::new("copy", "input", "copied").add_mapper(identity_mapper());
        let res = run_job(&cluster, &mut dfs, &conf).unwrap();
        assert!(res.stats.reduce.is_none());
        assert_eq!(dfs.read_file("copied").unwrap().len(), 200);
        assert_eq!(res.stats.shuffle_bytes, 0);
    }

    #[test]
    fn identity_reduce_groups_without_loss() {
        let (cluster, mut dfs) = setup(words());
        let conf = JobConf::new("group", "input", "grouped")
            .add_mapper(mapper_fn(|rec, out, _| {
                out.collect(Record::new(rec.value.clone(), rec.key.clone()));
            }))
            .with_identity_reduce(2);
        run_job(&cluster, &mut dfs, &conf).unwrap();
        assert_eq!(dfs.read_file("grouped").unwrap().len(), 200);
    }

    #[test]
    fn reduce_post_chain_applies() {
        let (cluster, mut dfs) = setup(words());
        let mut conf = wordcount_conf();
        conf.output = "out2".into();
        conf = conf.add_reduce_post(mapper_fn(|rec, out, _| {
            let c = rec.value.as_int().unwrap();
            if c >= 50 {
                out.collect(rec);
            }
        }));
        run_job(&cluster, &mut dfs, &conf).unwrap();
        let out = dfs.read_file("out2").unwrap();
        assert_eq!(out.len(), 2); // "the" (75) and "fox" (50)
    }

    #[test]
    fn charged_cost_increases_makespan() {
        let (cluster, mut dfs) = setup(words());
        let cheap = JobConf::new("cheap", "input", "o1").add_mapper(identity_mapper());
        let costly = JobConf::new("costly", "input", "o2").add_mapper(mapper_fn(
            |rec, out: &mut dyn Collector, ctx: &mut TaskCtx| {
                ctx.charge(SimDuration::from_millis(1));
                out.collect(rec);
            },
        ));
        let t_cheap = run_job(&cluster, &mut dfs, &cheap)
            .unwrap()
            .stats
            .makespan();
        let t_costly = run_job(&cluster, &mut dfs, &costly)
            .unwrap()
            .stats
            .makespan();
        assert!(t_costly > t_cheap, "{t_costly} vs {t_cheap}");
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (cluster, mut dfs) = setup(vec![]);
        let conf = JobConf::new("empty", "input", "out").add_mapper(identity_mapper());
        let res = run_job(&cluster, &mut dfs, &conf).unwrap();
        assert_eq!(res.stats.makespan(), SimDuration::ZERO);
        assert_eq!(dfs.read_file("out").unwrap().len(), 0);
    }

    #[test]
    fn missing_input_errors() {
        let (cluster, mut dfs) = setup(vec![]);
        let conf = JobConf::new("x", "no-such-file", "out");
        assert!(run_job(&cluster, &mut dfs, &conf).is_err());
    }

    #[test]
    fn reduce_from_requires_reduce() {
        let (cluster, mut dfs) = setup(vec![]);
        let conf = JobConf::new("x", "input", "out");
        let mut runner = Runner::new(&cluster, &mut dfs);
        assert!(runner
            .run_reduce_from(&conf, vec![], SimTime::ZERO)
            .is_err());
    }

    #[test]
    fn wave_split_then_merge_matches_full_run() {
        // Simulates what the adaptive optimizer does when it decides NOT to
        // change plans: wave 1 and the remainder executed separately must
        // reduce to the same output as one full run.
        let (cluster, mut dfs) = setup(words());
        let conf = wordcount_conf();
        let full = run_job(&cluster, &mut dfs, &conf).unwrap();
        let full_out = dfs.read_file("out").unwrap();

        let (cluster2, mut dfs2) = setup(words());
        let mut runner = Runner::new(&cluster2, &mut dfs2);
        let chunks = runner.chunks(&conf).unwrap();
        let w = runner
            .first_wave_count(chunks.len())
            .min(chunks.len() - 1)
            .max(1);
        let mut exec1 = runner.execute_maps(&conf, &chunks[..w], 0).unwrap();
        let mut exec2 = runner.execute_maps(&conf, &chunks[w..], w).unwrap();
        let mut sources = exec1.take_outputs();
        sources.extend(exec2.take_outputs());
        let outcome = runner
            .run_reduce_from(&conf, sources, SimTime::ZERO)
            .unwrap();
        let merged_out = dfs2.read_file("out").unwrap();
        assert_eq!(full_out, merged_out);
        assert_eq!(full.output.total_bytes(), outcome.output.total_bytes());
    }

    #[test]
    fn per_task_counters_survive_in_stats() {
        let (cluster, mut dfs) = setup(words());
        let conf = JobConf::new("count", "input", "out")
            .add_mapper(mapper_fn(
                |rec, out: &mut dyn Collector, ctx: &mut TaskCtx| {
                    ctx.counters.inc("custom.seen");
                    out.collect(rec);
                },
            ))
            .with_identity_reduce(1);
        let res = run_job(&cluster, &mut dfs, &conf).unwrap();
        assert_eq!(res.stats.counters.get("custom.seen"), 200);
        let per_task: i64 = res
            .stats
            .map
            .tasks
            .iter()
            .map(|t| t.counters.get("custom.seen"))
            .sum();
        assert_eq!(per_task, 200);
        assert!(res.stats.map.tasks.len() > 1);
    }
}

#[cfg(test)]
mod combiner_tests {
    use super::*;
    use crate::api::{mapper_fn, reducer_fn};
    use efind_common::Datum;
    use efind_dfs::DfsConfig;

    fn setup() -> (Cluster, Dfs) {
        let cluster = Cluster::builder()
            .nodes(3)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication: 2,
                seed: 4,
            },
        );
        let words = ["a", "b", "a", "c", "a", "b"];
        let records: Vec<Record> = words
            .iter()
            .cycle()
            .take(300)
            .enumerate()
            .map(|(i, w)| Record::new(i as i64, *w))
            .collect();
        dfs.write_file("input", records);
        (cluster, dfs)
    }

    fn count_conf(with_combiner: bool) -> JobConf {
        let sum = reducer_fn(
            |key, values, out: &mut dyn crate::api::Collector, _ctx: &mut TaskCtx| {
                let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                out.collect(Record::new(key, total));
            },
        );
        let mut conf = JobConf::new("wc", "input", "out")
            .add_mapper(mapper_fn(|rec, out, _| {
                out.collect(Record::new(rec.value.clone(), 1i64));
            }))
            .with_reducer(sum.clone(), 2);
        if with_combiner {
            conf = conf.with_combiner(sum);
        }
        conf
    }

    #[test]
    fn combiner_preserves_results() {
        let (cluster, mut dfs) = setup();
        run_job(&cluster, &mut dfs, &count_conf(false)).unwrap();
        let mut plain = dfs.read_file("out").unwrap();
        plain.sort();
        run_job(&cluster, &mut dfs, &count_conf(true)).unwrap();
        let mut combined = dfs.read_file("out").unwrap();
        combined.sort();
        assert_eq!(plain, combined);
        assert_eq!(plain.len(), 3);
    }

    #[test]
    fn combiner_cuts_shuffle_volume() {
        let (cluster, mut dfs) = setup();
        let plain = run_job(&cluster, &mut dfs, &count_conf(false)).unwrap();
        let combined = run_job(&cluster, &mut dfs, &count_conf(true)).unwrap();
        assert!(
            combined.stats.shuffle_bytes < plain.stats.shuffle_bytes / 5,
            "shuffle {} vs {}",
            combined.stats.shuffle_bytes,
            plain.stats.shuffle_bytes
        );
    }

    #[test]
    fn combiner_ignored_for_map_only_jobs() {
        let (cluster, mut dfs) = setup();
        let mut conf =
            JobConf::new("copy", "input", "copied").add_mapper(crate::api::identity_mapper());
        conf.combiner = Some(reducer_fn(|_k, _v, _out, _ctx| {
            panic!("combiner must not run without a reduce phase")
        }));
        let res = run_job(&cluster, &mut dfs, &conf).unwrap();
        assert_eq!(res.output.total_records(), 300);
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;
    use crate::api::{identity_mapper, mapper_fn, reducer_fn};
    use efind_cluster::ChaosPlan;
    use efind_common::Datum;
    use efind_dfs::DfsConfig;

    fn setup(replication: usize) -> (Cluster, Dfs) {
        let cluster = Cluster::builder()
            .nodes(4)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication,
                seed: 9,
            },
        );
        let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
        let records: Vec<Record> = text
            .iter()
            .cycle()
            .take(800)
            .enumerate()
            .map(|(i, w)| Record::new(i as i64, *w))
            .collect();
        dfs.write_file("input", records);
        (cluster, dfs)
    }

    fn wordcount_conf() -> JobConf {
        JobConf::new("wordcount", "input", "out")
            .add_mapper(mapper_fn(|rec, out, _ctx| {
                out.collect(Record::new(rec.value.clone(), 1i64));
            }))
            .with_reducer(
                reducer_fn(|key, values, out, _ctx| {
                    let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                    out.collect(Record::new(key, total));
                }),
                3,
            )
    }

    #[test]
    fn quiet_chaos_plan_matches_the_plain_runner_exactly() {
        let conf = wordcount_conf();
        let (cluster, mut dfs1) = setup(2);
        let plain = Runner::new(&cluster, &mut dfs1)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let (_, mut dfs2) = setup(2);
        let quiet = Runner::with_chaos(&cluster, &mut dfs2, ChaosPlan::none())
            .run(&conf, SimTime::ZERO)
            .unwrap();
        assert!(quiet.stats.recovery.is_empty());
        assert_eq!(plain.stats.finished, quiet.stats.finished);
        assert_eq!(
            plain.stats.counters.iter_sorted(),
            quiet.stats.counters.iter_sorted()
        );
        assert!(!quiet
            .stats
            .counters
            .iter_sorted()
            .iter()
            .any(|(name, _)| name.starts_with("mr.recovery.")));
        assert_eq!(
            dfs1.read_file("out").unwrap(),
            dfs2.read_file("out").unwrap()
        );
    }

    /// Satellite: a host dies *after* its map tasks completed but before the
    /// reduce fetch — the completed outputs are gone, a recompute wave
    /// re-runs them on survivors, reducers back off until the recomputed
    /// outputs exist, and the final output is bit-identical to a crash-free
    /// run.
    #[test]
    fn host_death_between_map_completion_and_fetch_recovers_bit_identically() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_free) = setup(2);
        let free = Runner::new(&cluster, &mut dfs_free)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let free_out = dfs_free.read_file("out").unwrap();

        // Kill the node that drains first — at one nanosecond before the
        // map phase ends, so it is idle (all its attempts completed) and
        // its node-local outputs die just before reducers start fetching.
        // The recompute wave then necessarily runs past the fetch point.
        let sched = &free.stats.map.schedule;
        let idle_since = |node| {
            sched
                .assignments
                .iter()
                .filter(|a| a.node == node)
                .map(|a| a.end)
                .max()
                .unwrap()
        };
        let victim_node = sched
            .assignments
            .iter()
            .map(|a| a.node)
            .min_by_key(|&n| (idle_since(n), n.0))
            .unwrap();
        assert!(
            idle_since(victim_node) < sched.makespan,
            "need a node that drains before the map phase ends"
        );
        let crash_at = SimTime::from_nanos(sched.makespan.as_nanos() - 1);
        let plan = ChaosPlan::new(7).kill(victim_node, crash_at);
        let victim_task = sched
            .assignments
            .iter()
            .find(|a| a.node == victim_node)
            .unwrap()
            .task_id;

        let (_, mut dfs) = setup(2);
        let crashed = Runner::with_chaos(&cluster, &mut dfs, plan)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let rec = &crashed.stats.recovery;
        assert_eq!(rec.crashes.len(), 1);
        assert!(rec.recompute_waves >= 1);
        assert!(
            rec.recomputed_map_tasks.contains(&victim_task),
            "task {victim_task} lost its output, got {:?}",
            rec.recomputed_map_tasks
        );
        // Reducers found the dead host and backed off in virtual time.
        assert!(rec.fetch_retries > 0);
        assert!(rec.fetch_backoff > SimDuration::ZERO);
        // Recovery costs time but never correctness.
        assert!(crashed.stats.finished >= free.stats.finished);
        assert_eq!(dfs.read_file("out").unwrap(), free_out);
        // The ledger surfaces as counters.
        assert!(crashed.stats.counters.get("mr.recovery.crashes") >= 1);
        assert!(crashed.stats.counters.get("mr.recovery.fetch.retries") >= 1);
    }

    #[test]
    fn crash_recovery_is_deterministic_across_runs() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_probe) = setup(2);
        let probe = Runner::new(&cluster, &mut dfs_probe)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let victim = probe
            .stats
            .map
            .schedule
            .assignments
            .iter()
            .min_by_key(|a| (a.end, a.task_id))
            .unwrap();
        let plan = ChaosPlan::new(11).kill(victim.node, victim.end);

        let (_, mut dfs1) = setup(2);
        let r1 = Runner::with_chaos(&cluster, &mut dfs1, plan.clone())
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let (_, mut dfs2) = setup(2);
        let r2 = Runner::with_chaos(&cluster, &mut dfs2, plan)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        assert_eq!(r1.stats.finished, r2.stats.finished);
        assert_eq!(r1.stats.recovery, r2.stats.recovery);
        assert_eq!(
            r1.stats.counters.iter_sorted(),
            r2.stats.counters.iter_sorted()
        );
        assert_eq!(
            dfs1.read_file("out").unwrap(),
            dfs2.read_file("out").unwrap()
        );
    }

    #[test]
    fn losing_the_last_input_replica_is_a_diagnosable_error() {
        let conf = wordcount_conf();
        let (cluster, mut dfs) = setup(1);
        // With replication 1 every chunk has exactly one host; killing chunk
        // 0's host before anything runs makes the input unrecoverable.
        let host = dfs.stat("input").unwrap().chunks[0].hosts[0];
        let plan = ChaosPlan::new(3).kill(host, SimTime::ZERO);
        let err = Runner::with_chaos(&cluster, &mut dfs, plan)
            .run(&conf, SimTime::ZERO)
            .unwrap_err();
        match err {
            Error::DataLoss(msg) => assert!(msg.contains("replica"), "{msg}"),
            other => panic!("expected DataLoss, got {other:?}"),
        }
    }

    #[test]
    fn map_only_jobs_survive_crashes_without_recompute() {
        let conf = JobConf::new("copy", "input", "copied").add_mapper(identity_mapper());
        let (cluster, mut dfs_free) = setup(2);
        let free = Runner::new(&cluster, &mut dfs_free)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let victim = free
            .stats
            .map
            .schedule
            .assignments
            .iter()
            .min_by_key(|a| (a.end, a.task_id))
            .unwrap();
        let plan = ChaosPlan::new(5).kill(victim.node, victim.end);
        let (_, mut dfs) = setup(2);
        let crashed = Runner::with_chaos(&cluster, &mut dfs, plan)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        // Map-only outputs go straight to the DFS, so a crash costs replica
        // copies but no recompute and no fetch retries.
        assert!(crashed.stats.recovery.recomputed_map_tasks.is_empty());
        assert_eq!(crashed.stats.recovery.fetch_retries, 0);
        assert_eq!(
            dfs.read_file("copied").unwrap(),
            dfs_free.read_file("copied").unwrap()
        );
    }
}

#[cfg(test)]
mod partition_tests {
    use super::*;
    use crate::api::{mapper_fn, reducer_fn};
    use efind_cluster::NodeId;
    use efind_common::Datum;
    use efind_dfs::DfsConfig;

    fn setup(replication: usize) -> (Cluster, Dfs) {
        let cluster = Cluster::builder()
            .nodes(4)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication,
                seed: 9,
            },
        );
        let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
        let records: Vec<Record> = text
            .iter()
            .cycle()
            .take(800)
            .enumerate()
            .map(|(i, w)| Record::new(i as i64, *w))
            .collect();
        dfs.write_file("input", records);
        (cluster, dfs)
    }

    fn wordcount_conf() -> JobConf {
        JobConf::new("wordcount", "input", "out")
            .add_mapper(mapper_fn(|rec, out, _ctx| {
                out.collect(Record::new(rec.value.clone(), 1i64));
            }))
            .with_reducer(
                reducer_fn(|key, values, out, _ctx| {
                    let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                    out.collect(Record::new(key, total));
                }),
                3,
            )
    }

    #[test]
    fn quiet_partition_plan_matches_the_plain_runner_exactly() {
        let conf = wordcount_conf();
        let (cluster, mut dfs1) = setup(2);
        let plain = Runner::new(&cluster, &mut dfs1)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let (_, mut dfs2) = setup(2);
        let quiet = Runner::new(&cluster, &mut dfs2)
            .with_netsplit(PartitionPlan::none(), DetectorConfig::default())
            .run(&conf, SimTime::ZERO)
            .unwrap();
        assert!(quiet.stats.partition.is_empty());
        assert_eq!(plain.stats.finished, quiet.stats.finished);
        assert_eq!(
            plain.stats.counters.iter_sorted(),
            quiet.stats.counters.iter_sorted()
        );
        assert!(!quiet
            .stats
            .counters
            .iter_sorted()
            .iter()
            .any(|(name, _)| name.starts_with("mr.partition.")));
        assert_eq!(
            dfs1.read_file("out").unwrap(),
            dfs2.read_file("out").unwrap()
        );
    }

    /// Tentpole acceptance: a partition that opens mid-job and heals
    /// completes bit-identically to the unpartitioned run — only timing
    /// and the gray ledger differ. The reducers back off across the heal
    /// instead of recomputing (the outputs are unreachable, not lost).
    #[test]
    fn partition_healing_mid_job_is_bit_identical_to_unpartitioned() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_free) = setup(2);
        let free = Runner::new(&cluster, &mut dfs_free)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let free_out = dfs_free.read_file("out").unwrap();

        // Isolate the node that drains first, from one nanosecond before
        // the map phase ends until shortly after: its completed outputs
        // sit behind the cut exactly when reducers start fetching.
        let sched = &free.stats.map.schedule;
        let idle_since = |node| {
            sched
                .assignments
                .iter()
                .filter(|a| a.node == node)
                .map(|a| a.end)
                .max()
                .unwrap()
        };
        let victim = sched
            .assignments
            .iter()
            .map(|a| a.node)
            .min_by_key(|&n| (idle_since(n), n.0))
            .unwrap();
        let cut = SimTime::from_nanos(sched.makespan.as_nanos() - 1);
        let heal = sched.makespan + SimDuration::from_micros(500);
        let plan = PartitionPlan::new(13).split(&[victim], cut, Some(heal));

        let (_, mut dfs) = setup(2);
        let split = Runner::new(&cluster, &mut dfs)
            .with_netsplit(plan, DetectorConfig::default())
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let gray = &split.stats.partition;
        assert!(!gray.is_empty(), "the cut must leave a trace");
        // The job waits out the heal one way or the other: results stall
        // behind the cut, or reducers back off on the fetch.
        assert!(
            gray.stalled_tasks > 0 || gray.failover_fetches > 0,
            "someone must wait for the heal, got {gray:?}"
        );
        assert!(gray.stall + gray.failover_wait > SimDuration::ZERO);
        // Waiting costs time but never correctness — and no data was
        // lost, so nothing recomputes or re-replicates.
        assert!(split.stats.finished >= free.stats.finished);
        assert!(split.stats.recovery.recomputed_map_tasks.is_empty());
        assert_eq!(gray.rereplicated_chunks, 0);
        assert_eq!(dfs.read_file("out").unwrap(), free_out);
        // The ledger surfaces as counters.
        assert!(split.stats.counters.get("mr.partition.events") >= 1);
    }

    /// A partition that never heals: the detector confirms the node gone,
    /// its completed map outputs are re-run on reachable nodes (the gray
    /// recompute wave), and the job still finishes bit-identically — the
    /// isolated replicas are unreachable, not lost, so the DFS is never
    /// repaired.
    #[test]
    fn confirmed_gone_node_is_replaced_and_the_job_recovers() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_free) = setup(2);
        let free = Runner::new(&cluster, &mut dfs_free)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let free_out = dfs_free.read_file("out").unwrap();

        let sched = &free.stats.map.schedule;
        let idle_since = |node| {
            sched
                .assignments
                .iter()
                .filter(|a| a.node == node)
                .map(|a| a.end)
                .max()
                .unwrap()
        };
        let victim = sched
            .assignments
            .iter()
            .map(|a| a.node)
            .min_by_key(|&n| (idle_since(n), n.0))
            .unwrap();
        assert!(
            idle_since(victim) < sched.makespan,
            "need a node that drains before the map phase ends"
        );
        // The cut opens the instant the victim drains and never heals.
        let plan = PartitionPlan::new(17).split(&[victim], idle_since(victim), None);

        let (_, mut dfs) = setup(2);
        let split = Runner::new(&cluster, &mut dfs)
            .with_netsplit(plan, DetectorConfig::default())
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let gray = &split.stats.partition;
        assert!(gray.suspected >= 1, "{gray:?}");
        assert!(gray.confirmed >= 1, "{gray:?}");
        assert!(gray.replaced_tasks > 0, "{gray:?}");
        assert!(split.stats.finished >= free.stats.finished);
        assert_eq!(dfs.read_file("out").unwrap(), free_out);
        assert!(split.stats.counters.get("mr.partition.confirmed") >= 1);
        assert!(split.stats.counters.get("mr.partition.replaced.tasks") >= 1);
    }

    /// Tentpole acceptance: an unhealed partition isolating the last
    /// reachable replica fails fast with `Error::Partitioned` — never a
    /// hang, and never `DataLoss` (the replica still exists).
    #[test]
    fn unhealed_partition_isolating_last_replica_fails_fast() {
        let conf = wordcount_conf();
        let (cluster, mut dfs) = setup(1);
        let host = dfs.stat("input").unwrap().chunks[0].hosts[0];
        let plan = PartitionPlan::new(3).split(&[host], SimTime::ZERO, None);
        let err = Runner::new(&cluster, &mut dfs)
            .with_netsplit(plan, DetectorConfig::default())
            .run(&conf, SimTime::ZERO)
            .unwrap_err();
        match err {
            Error::Partitioned(msg) => assert!(msg.contains("never heals"), "{msg}"),
            other => panic!("expected Partitioned, got {other:?}"),
        }
    }

    /// Replay determinism: the same armed plan (cuts, a slow link, and
    /// chaos kills together) produces bit-identical runs.
    #[test]
    fn partition_replay_is_deterministic_across_runs() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_probe) = setup(2);
        let probe = Runner::new(&cluster, &mut dfs_probe)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let victim = probe
            .stats
            .map
            .schedule
            .assignments
            .iter()
            .min_by_key(|a| (a.end, a.task_id))
            .unwrap();
        let heal = probe.stats.map.schedule.makespan + SimDuration::from_micros(200);
        let plan = PartitionPlan::new(23)
            .split(&[victim.node], victim.end, Some(heal))
            .slow_link(
                NodeId((victim.node.0 + 1) % 4),
                SimTime::ZERO,
                Some(heal),
                3.0,
            );

        let run = |plan: PartitionPlan| {
            let (_, mut dfs) = setup(2);
            let r = Runner::new(&cluster, &mut dfs)
                .with_netsplit(plan, DetectorConfig::default())
                .run(&conf, SimTime::ZERO)
                .unwrap();
            (
                r.stats.finished,
                r.stats.partition.clone(),
                r.stats.counters.iter_sorted(),
                dfs.read_file("out").unwrap(),
            )
        };
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
    }
}

#[cfg(test)]
mod corruption_tests {
    use super::*;
    use crate::api::{mapper_fn, reducer_fn};
    use efind_cluster::CorruptionPlan;
    use efind_common::Datum;
    use efind_dfs::DfsConfig;

    fn setup(replication: usize) -> (Cluster, Dfs) {
        let cluster = Cluster::builder()
            .nodes(4)
            .map_slots(2)
            .reduce_slots(2)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 512,
                replication,
                seed: 9,
            },
        );
        let text = ["the", "quick", "fox", "the", "lazy", "dog", "the", "fox"];
        let records: Vec<Record> = text
            .iter()
            .cycle()
            .take(800)
            .enumerate()
            .map(|(i, w)| Record::new(i as i64, *w))
            .collect();
        dfs.write_file("input", records);
        (cluster, dfs)
    }

    fn wordcount_conf() -> JobConf {
        JobConf::new("wordcount", "input", "out")
            .add_mapper(mapper_fn(|rec, out, _ctx| {
                out.collect(Record::new(rec.value.clone(), 1i64));
            }))
            .with_reducer(
                reducer_fn(|key, values, out, _ctx| {
                    let total: i64 = values.iter().filter_map(Datum::as_int).sum();
                    out.collect(Record::new(key, total));
                }),
                3,
            )
    }

    /// Counter set with the `mr.integrity.*` ledger mirror stripped — the
    /// invariance contract covers everything else.
    fn non_integrity_counters(stats: &JobStats) -> Vec<(std::sync::Arc<str>, i64)> {
        let mut c = stats.counters.iter_sorted();
        c.retain(|(k, _)| !k.starts_with("mr.integrity."));
        c
    }

    #[test]
    fn quiet_corruption_plan_matches_the_plain_runner_exactly() {
        let conf = wordcount_conf();
        let (cluster, mut dfs1) = setup(2);
        let plain = Runner::new(&cluster, &mut dfs1)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let (_, mut dfs2) = setup(2);
        let quiet = Runner::new(&cluster, &mut dfs2)
            .with_corruption(CorruptionPlan::new(77))
            .run(&conf, SimTime::ZERO)
            .unwrap();
        assert!(quiet.stats.integrity.is_empty());
        assert_eq!(plain.stats.finished, quiet.stats.finished);
        assert_eq!(
            plain.stats.counters.iter_sorted(),
            quiet.stats.counters.iter_sorted()
        );
        assert!(!quiet
            .stats
            .counters
            .iter_sorted()
            .iter()
            .any(|(name, _)| name.starts_with("mr.integrity.")));
        assert_eq!(
            dfs1.read_file("out").unwrap(),
            dfs2.read_file("out").unwrap()
        );
    }

    /// Finds a seed whose chunk draws corrupt at least one replica of
    /// `file` but never all replicas of any chunk — the recoverable case.
    fn recoverable_chunk_seed(dfs: &Dfs, file: &str, rate: f64) -> CorruptionPlan {
        let meta = dfs.stat(file).unwrap();
        'seed: for seed in 0..500u64 {
            let plan = CorruptionPlan::new(seed).chunks(rate);
            let mut any = false;
            for c in &meta.chunks {
                let bad = c
                    .hosts
                    .iter()
                    .filter(|h| plan.chunk_replica_corrupt(file, c.index, **h))
                    .count();
                if bad >= c.hosts.len() && !c.hosts.is_empty() {
                    continue 'seed;
                }
                any |= bad > 0;
            }
            if any {
                return plan;
            }
        }
        panic!("no recoverable corruption seed found");
    }

    #[test]
    fn chunk_corruption_costs_time_but_not_answers_or_counters() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_clean) = setup(3);
        let clean = Runner::new(&cluster, &mut dfs_clean)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let (_, mut dfs) = setup(3);
        let plan = recoverable_chunk_seed(&dfs, "input", 0.3);
        let hit = Runner::new(&cluster, &mut dfs)
            .with_corruption(plan)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        // Corruption was detected and repaired: the output and every
        // non-ledger counter are bit-identical, only virtual time moved.
        assert_eq!(
            dfs_clean.read_file("out").unwrap(),
            dfs.read_file("out").unwrap()
        );
        assert_eq!(
            non_integrity_counters(&clean.stats),
            non_integrity_counters(&hit.stats)
        );
        let integ = &hit.stats.integrity;
        assert!(!integ.corrupt_chunks.is_empty());
        assert!(integ.chunk_rereads > 0);
        assert!(!integ.reread_time.is_zero());
        assert_eq!(integ.quarantined_replicas as u64, integ.chunk_rereads);
        assert!(integ.repaired_chunks > 0, "quarantine must trigger repair");
        assert!(hit.stats.finished > clean.stats.finished);
        assert_eq!(
            hit.stats.counters.get("mr.integrity.chunks.corrupt"),
            integ.corrupt_chunks.len() as i64
        );
    }

    #[test]
    fn all_replicas_corrupt_fails_fast_with_data_corruption() {
        let conf = wordcount_conf();
        let (cluster, mut dfs) = setup(1);
        let err = Runner::new(&cluster, &mut dfs)
            .with_corruption(CorruptionPlan::new(1).chunks(1.0))
            .run(&conf, SimTime::ZERO)
            .unwrap_err();
        match err {
            Error::DataCorruption(msg) => {
                assert!(msg.contains("input"), "{msg}");
                assert!(msg.contains("chunk"), "{msg}");
            }
            other => panic!("expected DataCorruption, got {other:?}"),
        }
    }

    #[test]
    fn shuffle_corruption_refetches_and_preserves_output() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_clean) = setup(2);
        let clean = Runner::new(&cluster, &mut dfs_clean)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let (_, mut dfs) = setup(2);
        let hit = Runner::new(&cluster, &mut dfs)
            .with_corruption(CorruptionPlan::new(3).shuffle(0.6))
            .run(&conf, SimTime::ZERO)
            .unwrap();
        assert_eq!(
            dfs_clean.read_file("out").unwrap(),
            dfs.read_file("out").unwrap()
        );
        let integ = &hit.stats.integrity;
        assert!(integ.shuffle_refetches > 0);
        assert!(!integ.shuffle_refetch_time.is_zero());
        assert!(hit.stats.finished > clean.stats.finished);
        assert_eq!(
            non_integrity_counters(&clean.stats),
            non_integrity_counters(&hit.stats)
        );
    }

    #[test]
    fn verification_disabled_means_no_detection_and_no_ledger() {
        let conf = wordcount_conf();
        let (cluster, mut dfs_clean) = setup(3);
        let clean = Runner::new(&cluster, &mut dfs_clean)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        let (_, mut dfs) = setup(3);
        let plan = recoverable_chunk_seed(&dfs, "input", 0.3).without_verification();
        let unverified = Runner::new(&cluster, &mut dfs)
            .with_corruption(plan)
            .run(&conf, SimTime::ZERO)
            .unwrap();
        // Nothing checks, so nothing is detected, charged, or repaired —
        // the run is indistinguishable from a clean one (the model does
        // not forge wrong answers; EF018 exists to flag this setup).
        assert!(unverified.stats.integrity.is_empty());
        assert_eq!(clean.stats.finished, unverified.stats.finished);
    }
}
