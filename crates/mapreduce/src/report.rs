//! Human-readable job reports: phase summaries, locality rates, top
//! counters, and an ASCII per-node timeline of the virtual schedule.

use std::fmt::Write as _;

use efind_cluster::sched::Schedule;
use efind_cluster::SimTime;

use crate::stats::{JobStats, PhaseStats};

/// Renders a one-job summary: phases, task counts, locality, counters.
pub fn render_summary(stats: &JobStats) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "job {}: {} (virtual), {} map tasks, {} reduce tasks",
        stats.name,
        stats.makespan(),
        stats.map.tasks.len(),
        stats.reduce.as_ref().map(|r| r.tasks.len()).unwrap_or(0),
    );
    let _ = writeln!(
        s,
        "  map phase: input locality {:.0}%, {} output bytes",
        stats.map.schedule.input_locality() * 100.0,
        stats.map.output_bytes(),
    );
    if let Some(reduce) = &stats.reduce {
        let affinity_hits = reduce
            .schedule
            .assignments
            .iter()
            .filter(|a| a.affinity_hit)
            .count();
        let _ = writeln!(
            s,
            "  reduce phase: {} shuffle bytes, affinity hits {}/{}",
            stats.shuffle_bytes,
            affinity_hits,
            reduce.schedule.assignments.len(),
        );
    }
    let mut counters = stats.counters.iter_sorted();
    counters.retain(|(k, _)| k.starts_with("efind."));
    let fault_total = |suffix: &str| -> i64 {
        counters
            .iter()
            .filter(|(k, _)| k.ends_with(suffix))
            .map(|(_, v)| *v)
            .sum()
    };
    let failures = fault_total(".fault.failures");
    let timeouts = fault_total(".fault.timeouts");
    let retries = fault_total(".fault.retries");
    let exhausted = fault_total(".fault.exhausted");
    let degraded = fault_total(".fault.degraded");
    if failures + timeouts + retries + exhausted + degraded > 0 {
        let _ = writeln!(
            s,
            "  fault tolerance: {failures} transient failures, {timeouts} timeouts, \
             {retries} retries, {exhausted} exhausted, {degraded} degraded",
        );
    }
    if !stats.recovery.is_empty() {
        let rec = &stats.recovery;
        let _ = writeln!(
            s,
            "  crash recovery: {} node crashes, {} recompute waves ({} map tasks), \
             {} fetch retries ({} backoff), {} chunks re-replicated ({} bytes)",
            rec.crashes.len(),
            rec.recompute_waves,
            rec.recomputed_map_tasks.len(),
            rec.fetch_retries,
            rec.fetch_backoff,
            rec.rereplicated_chunks,
            rec.rereplicated_bytes,
        );
        if !rec.surviving_tasks.is_empty() || !rec.lost_tasks.is_empty() {
            let _ = writeln!(
                s,
                "    re-plan reused {} surviving first-wave results, re-mapped {} lost",
                rec.surviving_tasks.len(),
                rec.lost_tasks.len(),
            );
        }
    }
    if !stats.integrity.is_empty() {
        let integ = &stats.integrity;
        let _ = writeln!(
            s,
            "  integrity: {} corrupt chunks ({} replicas quarantined, {} repaired), \
             {} chunk rereads, {} shuffle refetches, {} cache invalidations, \
             {} lookup refetches",
            integ.corrupt_chunks.len(),
            integ.quarantined_replicas,
            integ.repaired_chunks,
            integ.chunk_rereads,
            integ.shuffle_refetches,
            integ.cache_invalidations,
            integ.lookup_refetches,
        );
    }
    if !counters.is_empty() {
        let _ = writeln!(s, "  efind counters:");
        for (k, v) in counters {
            let _ = writeln!(s, "    {k} = {v}");
        }
    }
    s
}

/// Renders a phase's schedule as an ASCII Gantt chart: one row per node,
/// `#` marks time buckets where at least one of the node's slots is busy.
pub fn render_timeline(phase: &PhaseStats, width: usize) -> String {
    render_schedule_timeline(&phase.schedule, width)
}

/// Renders any schedule as an ASCII timeline.
pub fn render_schedule_timeline(schedule: &Schedule, width: usize) -> String {
    let width = width.clamp(10, 200);
    let mut s = String::new();
    if schedule.assignments.is_empty() {
        let _ = writeln!(s, "  (no tasks)");
        return s;
    }
    let start = schedule
        .assignments
        .iter()
        .map(|a| a.start)
        .min()
        .unwrap_or(SimTime::ZERO);
    let end = schedule.makespan;
    let span = end.since(start).as_secs_f64().max(1e-9);

    let mut nodes: Vec<_> = schedule.assignments.iter().map(|a| a.node).collect();
    nodes.sort();
    nodes.dedup();
    for node in nodes {
        let mut row = vec![b'.'; width];
        let mut tasks = 0usize;
        for a in schedule.assignments.iter().filter(|a| a.node == node) {
            tasks += 1;
            let b0 = ((a.start.since(start).as_secs_f64() / span) * width as f64) as usize;
            let b1 = ((a.end.since(start).as_secs_f64() / span) * width as f64).ceil() as usize;
            for cell in row.iter_mut().take(b1.min(width)).skip(b0.min(width - 1)) {
                *cell = b'#';
            }
        }
        let _ = writeln!(
            s,
            "  {:<7} |{}| {} tasks",
            node.to_string(),
            String::from_utf8_lossy(&row),
            tasks,
        );
    }
    let _ = writeln!(
        s,
        "  {:<7}  0{:>w$}",
        "",
        efind_common::fmtutil::human_secs(span),
        w = width - 1
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{identity_mapper, mapper_fn, reducer_fn};
    use crate::job::JobConf;
    use crate::runner::run_job;
    use efind_cluster::Cluster;
    use efind_common::{Datum, Record};
    use efind_dfs::{Dfs, DfsConfig};

    fn run() -> JobStats {
        let cluster = Cluster::builder()
            .nodes(2)
            .map_slots(2)
            .reduce_slots(1)
            .build();
        let mut dfs = Dfs::new(
            cluster.clone(),
            DfsConfig {
                chunk_size_bytes: 256,
                replication: 1,
                seed: 2,
            },
        );
        let recs: Vec<Record> = (0..100i64).map(|i| Record::new(i, i % 5)).collect();
        dfs.write_file("in", recs);
        let conf = JobConf::new("demo", "in", "out")
            .add_mapper(mapper_fn(|rec, out, _| {
                out.collect(Record {
                    key: rec.value.clone(),
                    value: Datum::Int(1),
                });
            }))
            .with_reducer(
                reducer_fn(|key, values, out, _| {
                    out.collect(Record::new(key, values.len() as i64));
                }),
                2,
            );
        run_job(&cluster, &mut dfs, &conf).unwrap().stats
    }

    #[test]
    fn summary_mentions_phases_and_counts() {
        let stats = run();
        let s = render_summary(&stats);
        assert!(s.contains("job demo"));
        assert!(s.contains("map tasks"));
        assert!(s.contains("reduce phase"));
        assert!(s.contains("input locality"));
    }

    #[test]
    fn summary_omits_fault_line_without_fault_counters() {
        let stats = run();
        assert!(!render_summary(&stats).contains("fault tolerance"));
    }

    #[test]
    fn summary_omits_recovery_line_on_crash_free_runs() {
        let stats = run();
        assert!(stats.recovery.is_empty());
        assert!(!render_summary(&stats).contains("crash recovery"));
    }

    #[test]
    fn summary_reports_recovery_when_crashes_happened() {
        let mut stats = run();
        stats.recovery.crashes.push(efind_cluster::CrashEvent {
            node: efind_cluster::NodeId(1),
            at: SimTime::from_nanos(5),
        });
        stats.recovery.recompute_waves = 1;
        stats.recovery.recomputed_map_tasks = vec![0, 2];
        stats.recovery.fetch_retries = 6;
        stats.recovery.surviving_tasks = vec![1, 3];
        stats.recovery.lost_tasks = vec![0];
        let s = render_summary(&stats);
        assert!(s.contains("crash recovery: 1 node crashes"), "{s}");
        assert!(s.contains("1 recompute waves (2 map tasks)"), "{s}");
        assert!(s.contains("reused 2 surviving"), "{s}");
    }

    #[test]
    fn summary_omits_integrity_line_on_corruption_free_runs() {
        let stats = run();
        assert!(stats.integrity.is_empty());
        assert!(!render_summary(&stats).contains("integrity:"));
    }

    #[test]
    fn summary_reports_integrity_when_corruption_was_repaired() {
        let mut stats = run();
        stats.integrity.corrupt_chunks = vec![("in".into(), 4)];
        stats.integrity.quarantined_replicas = 1;
        stats.integrity.chunk_rereads = 1;
        stats.integrity.repaired_chunks = 1;
        stats.integrity.shuffle_refetches = 2;
        let s = render_summary(&stats);
        assert!(s.contains("integrity: 1 corrupt chunks"), "{s}");
        assert!(s.contains("1 replicas quarantined, 1 repaired"), "{s}");
        assert!(s.contains("2 shuffle refetches"), "{s}");
    }

    #[test]
    fn timeline_has_one_row_per_busy_node() {
        let stats = run();
        let t = render_timeline(&stats.map, 40);
        let rows = t.lines().filter(|l| l.contains('|')).count();
        assert!((1..=2).contains(&rows), "{t}");
        assert!(t.contains('#'), "{t}");
    }

    #[test]
    fn timeline_handles_empty_schedules() {
        let empty = PhaseStats {
            tasks: vec![],
            schedule: Schedule::default(),
        };
        assert!(render_timeline(&empty, 40).contains("no tasks"));
    }

    #[test]
    fn identity_job_summary_renders() {
        let cluster = Cluster::builder().nodes(1).build();
        let mut dfs = Dfs::new(cluster.clone(), DfsConfig::default());
        dfs.write_file("in", vec![Record::new(1i64, 2i64)]);
        let conf = JobConf::new("copy", "in", "out").add_mapper(identity_mapper());
        let stats = run_job(&cluster, &mut dfs, &conf).unwrap().stats;
        let s = render_summary(&stats);
        assert!(s.contains("0 reduce tasks"));
    }
}
