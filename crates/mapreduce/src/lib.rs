#![warn(missing_docs)]

//! A from-scratch MapReduce framework over the simulated cluster.
//!
//! This is the substrate the paper assumes (Hadoop 1.0.4) rebuilt in Rust:
//!
//! * [`api`] — `Mapper`/`Reducer` traits, collectors, and *chained
//!   functions*: a Map or Reduce computation is a chain of user functions
//!   where each function's output feeds the next. EFind's baseline strategy
//!   (Fig. 6) works exactly by inserting `preProcess`/`lookup`/
//!   `postProcess` into these chains.
//! * [`counters`] — Hadoop-style global counters plus mergeable FM sketches;
//!   the statistics mechanism of §4.2.
//! * [`context`] — the per-task context through which user code charges
//!   virtual time and declares index-locality affinity.
//! * [`partition`] — shuffle partitioners (hash by default, pluggable so
//!   EFind can co-partition with an index, §3.4).
//! * [`job`] — job configuration ([`JobConf`]).
//! * [`runner`] — execution: real map/reduce computation over real records,
//!   scheduled onto the simulated cluster for timing; includes the
//!   wave-split API the adaptive optimizer uses to stop a job after its
//!   first map wave and re-plan the rest (Fig. 10).
//!
//! The framework executes user code *for real* (all outputs are exact);
//! only durations come from the cluster's cost models.

pub mod api;
pub mod context;
pub mod counters;
pub mod integrity;
pub mod job;
pub mod netsplit_log;
pub mod partition;
pub mod recovery;
pub mod report;
pub mod runner;
pub mod stats;
pub mod tenancy;

pub use api::{
    identity_mapper, mapper_fn, reducer_fn, Collector, Mapper, MapperFactory, Reducer,
    ReducerFactory,
};
pub use context::TaskCtx;
pub use counters::{CounterHandle, Counters, Sketches};
pub use integrity::IntegrityLog;
pub use job::JobConf;
pub use netsplit_log::PartitionLog;
pub use partition::{HashPartitioner, Partitioner};
pub use recovery::RecoveryLog;
pub use runner::{run_job, JobResult, MapPhaseExec, ReduceTaskExec, Runner};
pub use stats::{JobStats, PhaseStats, TaskStats};
pub use tenancy::{run_tenant_mix, TenantJob, TenantJobOutcome, TenantMixOutcome};
