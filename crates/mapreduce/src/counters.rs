//! Global counters and mergeable sketches.
//!
//! §4.2: *"We leverage a feature in MapReduce systems, called counter, in
//! the implementation. A counter can be incremented by individual Map or
//! Reduce tasks and will be globally visible."* EFind derives every Table 1
//! statistic from counters, and estimates Θ from per-task Flajolet–Martin
//! bit vectors OR-ed together — [`Sketches`] carries those.

use efind_common::{Datum, FmSketch, FxHashMap};

/// A set of named integer counters.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    values: FxHashMap<String, i64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &str, delta: i64) {
        *self.values.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 if never written).
    pub fn get(&self, name: &str) -> i64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Merges another counter set into this one by summing.
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterates counters in sorted-name order (for stable reports).
    pub fn iter_sorted(&self) -> Vec<(&str, i64)> {
        let mut items: Vec<(&str, i64)> =
            self.values.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        items.sort_unstable();
        items
    }

    /// True if no counter has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Named FM sketches, one per statistic that needs a distinct count.
#[derive(Clone, Debug, Default)]
pub struct Sketches {
    sketches: FxHashMap<String, FmSketch>,
}

impl Sketches {
    /// Creates an empty sketch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes `key` under sketch `name`.
    pub fn observe(&mut self, name: &str, key: &Datum) {
        self.sketches
            .entry(name.to_owned())
            .or_default()
            .insert(key);
    }

    /// Estimated distinct count under `name` (0 if never observed).
    pub fn estimate(&self, name: &str) -> f64 {
        self.sketches.get(name).map_or(0.0, FmSketch::estimate)
    }

    /// ORs another sketch set into this one.
    pub fn merge(&mut self, other: &Sketches) {
        for (k, v) in &other.sketches {
            self.sketches.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_get_merge() {
        let mut a = Counters::new();
        a.add("x", 3);
        a.inc("x");
        assert_eq!(a.get("x"), 4);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.add("x", 6);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 10);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn sorted_iteration() {
        let mut c = Counters::new();
        c.add("b", 2);
        c.add("a", 1);
        assert_eq!(c.iter_sorted(), vec![("a", 1), ("b", 2)]);
    }

    #[test]
    fn sketches_merge_like_union() {
        let mut a = Sketches::new();
        let mut b = Sketches::new();
        for i in 0..2_000i64 {
            a.observe("keys", &Datum::Int(i));
            b.observe("keys", &Datum::Int(i + 1_000));
        }
        a.merge(&b);
        let est = a.estimate("keys");
        assert!((est - 3_000.0).abs() / 3_000.0 < 0.3, "est={est}");
        assert_eq!(a.estimate("other"), 0.0);
    }
}
