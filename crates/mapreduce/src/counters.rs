//! Global counters and mergeable sketches.
//!
//! §4.2: *"We leverage a feature in MapReduce systems, called counter, in
//! the implementation. A counter can be incremented by individual Map or
//! Reduce tasks and will be globally visible."* EFind derives every Table 1
//! statistic from counters, and estimates Θ from per-task Flajolet–Martin
//! bit vectors OR-ed together — [`Sketches`] carries those.
//!
//! Counter names are interned once into [`Symbol`]s (see
//! `efind_common::intern`): the map is keyed by a dense `u32`, so an
//! increment through a pre-resolved [`CounterHandle`] touches no `String`
//! at all — no allocation, no byte-wise hashing. The string-keyed API is
//! kept for cold paths (reports, tests, plan statistics).

use std::sync::Arc;

use efind_common::intern::{intern, resolve};
use efind_common::{Datum, FmSketch, FxHashMap, Symbol};

/// A pre-resolved counter (or sketch) name. Resolve once with
/// [`CounterHandle::new`], then increment through it on the hot path —
/// each use is a `u32` map update with zero allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterHandle(Symbol);

impl CounterHandle {
    /// Interns `name` and returns its handle.
    pub fn new(name: &str) -> Self {
        Self(intern(name))
    }

    /// The underlying interned symbol.
    pub fn symbol(self) -> Symbol {
        self.0
    }

    /// The counter's name text (shared, not rebuilt).
    pub fn name(self) -> Arc<str> {
        resolve(self.0)
    }
}

impl From<&str> for CounterHandle {
    fn from(name: &str) -> Self {
        Self::new(name)
    }
}

/// A set of named integer counters.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    values: FxHashMap<Symbol, i64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name`. Interns the name; prefer
    /// [`Counters::bump`] with a pre-resolved handle on hot paths.
    pub fn add(&mut self, name: &str, delta: i64) {
        self.bump(CounterHandle(intern(name)), delta);
    }

    /// Adds `delta` through a pre-resolved handle — the allocation-free
    /// hot path.
    pub fn bump(&mut self, handle: CounterHandle, delta: i64) {
        *self.values.entry(handle.0).or_insert(0) += delta;
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (0 if never written).
    pub fn get(&self, name: &str) -> i64 {
        self.values.get(&intern(name)).copied().unwrap_or(0)
    }

    /// Reads a counter through a pre-resolved handle.
    pub fn get_handle(&self, handle: CounterHandle) -> i64 {
        self.values.get(&handle.0).copied().unwrap_or(0)
    }

    /// Merges another counter set into this one by summing. Keys are
    /// interned symbols (`Copy`), so nothing is cloned.
    pub fn merge(&mut self, other: &Counters) {
        // efind-lint: allow(unordered-iter, merge sums commute; no order reaches any output)
        for (&k, &v) in &other.values {
            *self.values.entry(k).or_insert(0) += v;
        }
    }

    /// Iterates counters in sorted-name order (for stable reports). The
    /// returned names are shared handles into the intern table, not
    /// rebuilt strings.
    pub fn iter_sorted(&self) -> Vec<(Arc<str>, i64)> {
        let mut items: Vec<(Arc<str>, i64)> =
            // efind-lint: allow(unordered-iter, items are sorted by name before being returned)
            self.values.iter().map(|(&k, &v)| (resolve(k), v)).collect();
        items.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        items
    }

    /// True if no counter has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Named FM sketches, one per statistic that needs a distinct count.
#[derive(Clone, Debug, Default)]
pub struct Sketches {
    sketches: FxHashMap<Symbol, FmSketch>,
}

impl Sketches {
    /// Creates an empty sketch set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes `key` under sketch `name`. Interns the name; prefer
    /// [`Sketches::observe_handle`] on hot paths.
    pub fn observe(&mut self, name: &str, key: &Datum) {
        self.observe_handle(CounterHandle(intern(name)), key);
    }

    /// Observes `key` through a pre-resolved handle — allocation-free on
    /// the name.
    pub fn observe_handle(&mut self, handle: CounterHandle, key: &Datum) {
        self.sketches.entry(handle.0).or_default().insert(key);
    }

    /// Estimated distinct count under `name` (0 if never observed).
    pub fn estimate(&self, name: &str) -> f64 {
        self.sketches
            .get(&intern(name))
            .map_or(0.0, FmSketch::estimate)
    }

    /// ORs another sketch set into this one. Keys are interned symbols
    /// (`Copy`), so nothing is cloned.
    pub fn merge(&mut self, other: &Sketches) {
        // efind-lint: allow(unordered-iter, sketch merge is a bitwise OR; it commutes and no order escapes)
        for (&k, v) in &other.sketches {
            self.sketches.entry(k).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_add_get_merge() {
        let mut a = Counters::new();
        a.add("x", 3);
        a.inc("x");
        assert_eq!(a.get("x"), 4);
        assert_eq!(a.get("missing"), 0);

        let mut b = Counters::new();
        b.add("x", 6);
        b.add("y", 1);
        a.merge(&b);
        assert_eq!(a.get("x"), 10);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn sorted_iteration() {
        let mut c = Counters::new();
        c.add("b", 2);
        c.add("a", 1);
        let sorted = c.iter_sorted();
        let items: Vec<(&str, i64)> = sorted.iter().map(|(k, v)| (&**k, *v)).collect();
        assert_eq!(items, vec![("a", 1), ("b", 2)]);
    }

    #[test]
    fn handles_and_strings_hit_the_same_counter() {
        let mut c = Counters::new();
        let h = CounterHandle::new("handle.test.shared");
        c.bump(h, 5);
        c.add("handle.test.shared", 2);
        assert_eq!(c.get("handle.test.shared"), 7);
        assert_eq!(c.get_handle(h), 7);
        assert_eq!(&*h.name(), "handle.test.shared");
    }

    #[test]
    fn handle_bumps_do_not_grow_the_intern_table() {
        let mut c = Counters::new();
        let h = CounterHandle::new("handle.test.hot");
        c.bump(h, 1);
        let before = efind_common::intern::table_len();
        for _ in 0..10_000 {
            c.bump(h, 1);
        }
        assert_eq!(efind_common::intern::table_len(), before);
        assert_eq!(c.get_handle(h), 10_001);
    }

    #[test]
    fn sketches_merge_like_union() {
        let mut a = Sketches::new();
        let mut b = Sketches::new();
        for i in 0..2_000i64 {
            a.observe("keys", &Datum::Int(i));
            b.observe("keys", &Datum::Int(i + 1_000));
        }
        a.merge(&b);
        let est = a.estimate("keys");
        assert!((est - 3_000.0).abs() / 3_000.0 < 0.3, "est={est}");
        assert_eq!(a.estimate("other"), 0.0);
    }
}
