//! Shuffle partitioners.
//!
//! The default is Hadoop's hash partitioner. The trait is public because
//! EFind's index-locality strategy (§3.4) replaces it with the *index's*
//! partition scheme so the shuffled lookup keys are co-partitioned with the
//! index.

use std::sync::Arc;

use efind_common::{fx_hash_datum, Datum};

/// Routes a record key to one of `num_partitions` reducers.
pub trait Partitioner: Send + Sync {
    /// Returns the partition of `key` in `[0, num_partitions)`.
    fn partition(&self, key: &Datum, num_partitions: usize) -> usize;
}

/// Hash partitioning (Hadoop's `HashPartitioner`).
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn partition(&self, key: &Datum, num_partitions: usize) -> usize {
        (fx_hash_datum(key) % num_partitions.max(1) as u64) as usize
    }
}

/// A partitioner backed by a closure, for index co-partitioning.
pub struct FnPartitioner<F>(pub F);

impl<F> Partitioner for FnPartitioner<F>
where
    F: Fn(&Datum, usize) -> usize + Send + Sync,
{
    fn partition(&self, key: &Datum, num_partitions: usize) -> usize {
        (self.0)(key, num_partitions).min(num_partitions.saturating_sub(1))
    }
}

/// Convenience constructor for [`FnPartitioner`].
pub fn partitioner_fn<F>(f: F) -> Arc<dyn Partitioner>
where
    F: Fn(&Datum, usize) -> usize + Send + Sync + 'static,
{
    Arc::new(FnPartitioner(f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partition_in_range_and_deterministic() {
        let p = HashPartitioner;
        for i in 0..1_000i64 {
            let k = Datum::Int(i);
            let a = p.partition(&k, 7);
            assert!(a < 7);
            assert_eq!(a, p.partition(&k, 7));
        }
    }

    #[test]
    fn hash_partition_spreads() {
        let p = HashPartitioner;
        let mut counts = [0usize; 4];
        for i in 0..4_000i64 {
            counts[p.partition(&Datum::Int(i), 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }

    #[test]
    fn single_partition_degenerate() {
        let p = HashPartitioner;
        assert_eq!(p.partition(&Datum::Int(5), 1), 0);
        assert_eq!(p.partition(&Datum::Int(5), 0), 0);
    }

    #[test]
    fn fn_partitioner_clamps() {
        let p = partitioner_fn(|_k, _n| 99);
        assert_eq!(p.partition(&Datum::Int(1), 4), 3);
    }
}
