//! User-code traits and the chained-function mechanism.
//!
//! Hadoop's `ChainMapper`/`ChainReducer` let several functions run inside
//! one task, each consuming the previous one's output. The paper's baseline
//! strategy (Fig. 6) implements an `IndexOperator` by inserting its three
//! methods as chained functions around the original Map/Reduce. Here a map
//! computation is a `Vec<MapperFactory>` and a reduce computation is an
//! optional [`Reducer`] followed by more chained mappers.
//!
//! Factories exist because tasks need private state — the lookup cache of
//! §3.2 lives inside one task's chain instance — so every task instantiates
//! its own chain.

use std::sync::Arc;

use efind_common::{Datum, Record};

use crate::context::TaskCtx;

/// Receives the records a user function emits.
pub trait Collector {
    /// Emits one record downstream.
    fn collect(&mut self, rec: Record);
}

impl Collector for Vec<Record> {
    fn collect(&mut self, rec: Record) {
        self.push(rec);
    }
}

/// A record-at-a-time user function (Map, or a chained function).
pub trait Mapper: Send {
    /// Processes one input record, emitting any number of output records.
    fn map(&mut self, rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx);

    /// Called once after the last record of the task; emits any buffered
    /// output (used by stateful chain elements).
    fn flush(&mut self, _out: &mut dyn Collector, _ctx: &mut TaskCtx) {}
}

/// A group-at-a-time user function (Reduce).
pub trait Reducer: Send {
    /// Processes one key group.
    fn reduce(
        &mut self,
        key: Datum,
        values: Vec<Datum>,
        out: &mut dyn Collector,
        ctx: &mut TaskCtx,
    );

    /// Called once after the last group of the task.
    fn flush(&mut self, _out: &mut dyn Collector, _ctx: &mut TaskCtx) {}
}

/// Creates a fresh [`Mapper`] instance per task.
pub type MapperFactory = Arc<dyn Fn() -> Box<dyn Mapper> + Send + Sync>;

/// Creates a fresh [`Reducer`] instance per task.
pub type ReducerFactory = Arc<dyn Fn() -> Box<dyn Reducer> + Send + Sync>;

struct FnMapper<F>(F);

impl<F> Mapper for FnMapper<F>
where
    F: FnMut(Record, &mut dyn Collector, &mut TaskCtx) + Send,
{
    fn map(&mut self, rec: Record, out: &mut dyn Collector, ctx: &mut TaskCtx) {
        (self.0)(rec, out, ctx);
    }
}

/// Wraps a stateless closure as a [`MapperFactory`].
pub fn mapper_fn<F>(f: F) -> MapperFactory
where
    F: Fn(Record, &mut dyn Collector, &mut TaskCtx) + Send + Sync + Clone + 'static,
{
    Arc::new(move || Box::new(FnMapper(f.clone())))
}

struct FnReducer<F>(F);

impl<F> Reducer for FnReducer<F>
where
    F: FnMut(Datum, Vec<Datum>, &mut dyn Collector, &mut TaskCtx) + Send,
{
    fn reduce(
        &mut self,
        key: Datum,
        values: Vec<Datum>,
        out: &mut dyn Collector,
        ctx: &mut TaskCtx,
    ) {
        (self.0)(key, values, out, ctx);
    }
}

/// Wraps a stateless closure as a [`ReducerFactory`].
pub fn reducer_fn<F>(f: F) -> ReducerFactory
where
    F: Fn(Datum, Vec<Datum>, &mut dyn Collector, &mut TaskCtx) + Send + Sync + Clone + 'static,
{
    Arc::new(move || Box::new(FnReducer(f.clone())))
}

/// The identity map: passes records through unchanged.
pub fn identity_mapper() -> MapperFactory {
    mapper_fn(|rec, out, _ctx| out.collect(rec))
}

/// Runs `records` through an instantiated chain of mappers, honoring
/// per-stage `flush`. Stages execute in order; each stage sees the whole
/// output of the previous one.
pub fn run_chain(chain: &[MapperFactory], records: Vec<Record>, ctx: &mut TaskCtx) -> Vec<Record> {
    let mut current = records;
    for factory in chain {
        let mut stage = factory();
        let mut next = Vec::with_capacity(current.len());
        for rec in current {
            stage.map(rec, &mut next, ctx);
        }
        stage.flush(&mut next, ctx);
        current = next;
    }
    current
}

/// [`run_chain`] over a shared input slice. The first stage streams clones
/// of the shared records (no intermediate `Vec` materialized up front);
/// later stages consume each other's owned output as usual. Map tasks use
/// this to feed straight off shared DFS chunk storage.
pub fn run_chain_shared(
    chain: &[MapperFactory],
    records: Arc<[Record]>,
    ctx: &mut TaskCtx,
) -> Vec<Record> {
    let Some((first, rest)) = chain.split_first() else {
        return records.to_vec();
    };
    let mut stage = first();
    let mut next = Vec::with_capacity(records.len());
    for rec in records.iter() {
        stage.map(rec.clone(), &mut next, ctx);
    }
    stage.flush(&mut next, ctx);
    run_chain(rest, next, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> TaskCtx {
        TaskCtx::new(0)
    }

    #[test]
    fn identity_chain_passes_through() {
        let recs = vec![Record::new(1i64, "a"), Record::new(2i64, "b")];
        let out = run_chain(&[identity_mapper()], recs.clone(), &mut ctx());
        assert_eq!(out, recs);
    }

    #[test]
    fn chain_composes_in_order() {
        let double = mapper_fn(|rec: Record, out: &mut dyn Collector, _: &mut TaskCtx| {
            let v = rec.key.as_int().unwrap();
            out.collect(Record::new(v * 2, Datum::Null));
        });
        let inc = mapper_fn(|rec: Record, out: &mut dyn Collector, _: &mut TaskCtx| {
            let v = rec.key.as_int().unwrap();
            out.collect(Record::new(v + 1, Datum::Null));
        });
        let recs = vec![Record::new(3i64, Datum::Null)];
        // (3*2)+1 = 7, not (3+1)*2 = 8.
        let out = run_chain(&[double.clone(), inc.clone()], recs.clone(), &mut ctx());

        assert_eq!(out[0].key, Datum::Int(7));
        let out = run_chain(&[inc, double], recs, &mut ctx());
        assert_eq!(out[0].key, Datum::Int(8));
    }

    #[test]
    fn one_to_many_expansion() {
        let explode = mapper_fn(|rec: Record, out: &mut dyn Collector, _: &mut TaskCtx| {
            let n = rec.key.as_int().unwrap();
            for i in 0..n {
                out.collect(Record::new(i, Datum::Null));
            }
        });
        let out = run_chain(&[explode], vec![Record::new(3i64, Datum::Null)], &mut ctx());
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn stateful_stage_flushes() {
        struct Summer {
            total: i64,
        }
        impl Mapper for Summer {
            fn map(&mut self, rec: Record, _out: &mut dyn Collector, _ctx: &mut TaskCtx) {
                self.total += rec.key.as_int().unwrap();
            }
            fn flush(&mut self, out: &mut dyn Collector, _ctx: &mut TaskCtx) {
                out.collect(Record::new(self.total, Datum::Null));
            }
        }
        let factory: MapperFactory = Arc::new(|| Box::new(Summer { total: 0 }));
        let recs = (1..=4i64).map(|i| Record::new(i, Datum::Null)).collect();
        let out = run_chain(&[factory], recs, &mut ctx());
        assert_eq!(out, vec![Record::new(10i64, Datum::Null)]);
    }

    #[test]
    fn fresh_instance_per_run() {
        struct Counting {
            seen: usize,
        }
        impl Mapper for Counting {
            fn map(&mut self, _rec: Record, out: &mut dyn Collector, _ctx: &mut TaskCtx) {
                self.seen += 1;
                out.collect(Record::new(self.seen as i64, Datum::Null));
            }
        }
        let factory: MapperFactory = Arc::new(|| Box::new(Counting { seen: 0 }));
        for _ in 0..2 {
            let out = run_chain(
                std::slice::from_ref(&factory),
                vec![Record::new(0i64, Datum::Null)],
                &mut ctx(),
            );
            // State must not leak between task instantiations.
            assert_eq!(out[0].key, Datum::Int(1));
        }
    }
}
