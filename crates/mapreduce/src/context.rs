//! Per-task execution context.
//!
//! User code (and the EFind chain elements wrapped around it) interacts
//! with the simulation through the context: it charges virtual time for
//! modeled operations (index serve time, network transfers, cache probes)
//! and declares index-locality affinity for the scheduler.
//!
//! Placement-dependent cost is charged through
//! [`TaskCtx::charge_affinity_penalty`]: the scheduler adds that amount
//! only when the task fails to land on one of its affinity nodes, which is
//! exactly the local-vs-remote lookup distinction of §3.4.

use efind_cluster::{NodeId, SimDuration};

use crate::counters::{Counters, Sketches};

/// Mutable per-task state threaded through every user function call.
#[derive(Debug)]
pub struct TaskCtx {
    task_id: usize,
    /// Task-local counters, merged into the job at task end.
    pub counters: Counters,
    /// Task-local FM sketches, merged into the job at task end.
    pub sketches: Sketches,
    cost: SimDuration,
    affinity: Vec<NodeId>,
    affinity_penalty: SimDuration,
    hard_affinity: bool,
    error: Option<String>,
}

impl TaskCtx {
    /// Creates a fresh context for task `task_id`.
    pub fn new(task_id: usize) -> Self {
        TaskCtx {
            task_id,
            counters: Counters::new(),
            sketches: Sketches::new(),
            cost: SimDuration::ZERO,
            affinity: Vec::new(),
            affinity_penalty: SimDuration::ZERO,
            hard_affinity: false,
            error: None,
        }
    }

    /// Reports a task failure. `Mapper::map` has no error channel (like
    /// Hadoop's `map()` throwing into the framework); the runner checks
    /// this after the task and fails the job. The first error wins.
    pub fn fail(&mut self, msg: impl Into<String>) {
        if self.error.is_none() {
            self.error = Some(msg.into());
        }
    }

    /// The recorded failure, if any.
    pub fn error(&self) -> Option<&str> {
        self.error.as_deref()
    }

    /// The task's id within its phase.
    pub fn task_id(&self) -> usize {
        self.task_id
    }

    /// Charges placement-independent virtual time to the task.
    pub fn charge(&mut self, d: SimDuration) {
        self.cost += d;
    }

    /// Accumulated placement-independent cost.
    pub fn charged(&self) -> SimDuration {
        self.cost
    }

    /// Declares nodes on which this task's index lookups would be local.
    /// Later declarations extend the set.
    pub fn add_affinity(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            if !self.affinity.contains(&n) {
                self.affinity.push(n);
            }
        }
    }

    /// Charges cost incurred **only** when the task runs off its affinity
    /// nodes (e.g. the network leg of an index lookup).
    pub fn charge_affinity_penalty(&mut self, d: SimDuration) {
        self.affinity_penalty += d;
    }

    /// The declared affinity nodes.
    pub fn affinity(&self) -> &[NodeId] {
        &self.affinity
    }

    /// The accumulated off-affinity penalty.
    pub fn affinity_penalty(&self) -> SimDuration {
        self.affinity_penalty
    }

    /// Requires the task to run ON its affinity nodes (hard co-location;
    /// used only by the soft-vs-hard comparison experiment).
    pub fn require_affinity(&mut self) {
        self.hard_affinity = true;
    }

    /// True if hard co-location was requested.
    pub fn hard_affinity(&self) -> bool {
        self.hard_affinity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charging_accumulates() {
        let mut ctx = TaskCtx::new(3);
        assert_eq!(ctx.task_id(), 3);
        ctx.charge(SimDuration::from_millis(2));
        ctx.charge(SimDuration::from_millis(3));
        assert_eq!(ctx.charged(), SimDuration::from_millis(5));
    }

    #[test]
    fn affinity_dedups() {
        let mut ctx = TaskCtx::new(0);
        ctx.add_affinity(&[NodeId(1), NodeId(2)]);
        ctx.add_affinity(&[NodeId(2), NodeId(3)]);
        assert_eq!(ctx.affinity(), &[NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn penalty_separate_from_cost() {
        let mut ctx = TaskCtx::new(0);
        ctx.charge_affinity_penalty(SimDuration::from_millis(7));
        assert_eq!(ctx.charged(), SimDuration::ZERO);
        assert_eq!(ctx.affinity_penalty(), SimDuration::from_millis(7));
    }
}
