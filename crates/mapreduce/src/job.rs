//! Job configuration.

use std::sync::Arc;

use efind_cluster::SimDuration;

use crate::api::{MapperFactory, ReducerFactory};
use crate::partition::{HashPartitioner, Partitioner};

/// Configuration of one MapReduce job (the vanilla `JobConf` of Fig. 5;
/// EFind wraps it with its `IndexJobConf` in the core crate).
///
/// The map computation is a chain of mappers; the reduce computation is an
/// optional reducer followed by a chain of post-reduce mappers. EFind's
/// baseline strategy places `preProcess → lookup → postProcess` inside
/// these chains exactly as in Fig. 6.
#[derive(Clone)]
pub struct JobConf {
    /// Job name (used in reports and derived file names).
    pub name: String,
    /// DFS input file.
    pub input: String,
    /// Chained map functions, applied in order.
    pub map_chain: Vec<MapperFactory>,
    /// The reduce function; `None` with `num_reducers > 0` groups keys and
    /// re-emits `(key, value)` pairs unchanged (identity reduce).
    pub reducer: Option<ReducerFactory>,
    /// Optional combiner, run over each map task's output before the
    /// shuffle (Hadoop's combiner): must be semantically idempotent with
    /// the reducer for associative aggregations. Cuts shuffle volume.
    pub combiner: Option<ReducerFactory>,
    /// Chained functions applied after the reducer within reduce tasks
    /// (where EFind places tail operators in the baseline strategy).
    pub reduce_post: Vec<MapperFactory>,
    /// Number of reduce tasks; 0 makes the job map-only.
    pub num_reducers: usize,
    /// Shuffle partitioner.
    pub partitioner: Arc<dyn Partitioner>,
    /// DFS output file.
    pub output: String,
    /// Modeled CPU time charged per record at every processing step.
    pub cpu_per_record: SimDuration,
    /// Target chunk count for the output file (`None` = DFS default).
    /// Chained jobs set this so the next job's map phase parallelizes.
    pub output_chunks: Option<usize>,
}

impl JobConf {
    /// Creates a job with defaults: hash partitioning, identity reduce
    /// disabled (map-only), 1 µs of CPU per record.
    pub fn new(
        name: impl Into<String>,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        JobConf {
            name: name.into(),
            input: input.into(),
            map_chain: Vec::new(),
            reducer: None,
            combiner: None,
            reduce_post: Vec::new(),
            num_reducers: 0,
            partitioner: Arc::new(HashPartitioner),
            output: output.into(),
            cpu_per_record: SimDuration::from_micros(1),
            output_chunks: None,
        }
    }

    /// Appends a map chain element.
    pub fn add_mapper(mut self, m: MapperFactory) -> Self {
        self.map_chain.push(m);
        self
    }

    /// Sets the reducer and reduce-task count.
    pub fn with_reducer(mut self, r: ReducerFactory, num_reducers: usize) -> Self {
        self.reducer = Some(r);
        self.num_reducers = num_reducers.max(1);
        self
    }

    /// Sets the combiner.
    pub fn with_combiner(mut self, c: ReducerFactory) -> Self {
        self.combiner = Some(c);
        self
    }

    /// Enables an identity group-by with `num_reducers` tasks.
    pub fn with_identity_reduce(mut self, num_reducers: usize) -> Self {
        self.reducer = None;
        self.num_reducers = num_reducers.max(1);
        self
    }

    /// Appends a post-reduce chain element.
    pub fn add_reduce_post(mut self, m: MapperFactory) -> Self {
        self.reduce_post.push(m);
        self
    }

    /// Overrides the partitioner.
    pub fn with_partitioner(mut self, p: Arc<dyn Partitioner>) -> Self {
        self.partitioner = p;
        self
    }

    /// Overrides the modeled per-record CPU cost.
    pub fn with_cpu_per_record(mut self, d: SimDuration) -> Self {
        self.cpu_per_record = d;
        self
    }

    /// True if the job has a reduce phase.
    pub fn has_reduce(&self) -> bool {
        self.num_reducers > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::identity_mapper;

    #[test]
    fn builder_defaults() {
        let j = JobConf::new("j", "in", "out");
        assert!(!j.has_reduce());
        assert!(j.map_chain.is_empty());
        assert_eq!(j.cpu_per_record, SimDuration::from_micros(1));
    }

    #[test]
    fn builder_composition() {
        let j = JobConf::new("j", "in", "out")
            .add_mapper(identity_mapper())
            .with_identity_reduce(4)
            .add_reduce_post(identity_mapper());
        assert!(j.has_reduce());
        assert_eq!(j.num_reducers, 4);
        assert_eq!(j.map_chain.len(), 1);
        assert_eq!(j.reduce_post.len(), 1);
    }

    #[test]
    fn reducer_count_clamped() {
        let j = JobConf::new("j", "in", "out").with_identity_reduce(0);
        assert_eq!(j.num_reducers, 1);
    }
}
