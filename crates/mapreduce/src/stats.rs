//! Job and task statistics.
//!
//! EFind's catalog and adaptive optimizer consume these: per-task counter
//! snapshots drive the variance gate of §4.2 (statistics are trusted only
//! when `stddev/mean` across tasks is small), merged counters and sketches
//! drive the cost model, and the schedules carry the virtual timeline.

use efind_cluster::{sched::Schedule, SimDuration, SimTime};

use crate::counters::{Counters, Sketches};
use crate::integrity::IntegrityLog;
use crate::netsplit_log::PartitionLog;
use crate::recovery::RecoveryLog;

/// Statistics of a single executed task.
#[derive(Clone, Debug)]
pub struct TaskStats {
    /// Task id within its phase.
    pub task_id: usize,
    /// Records consumed.
    pub input_records: u64,
    /// Serialized bytes consumed.
    pub input_bytes: u64,
    /// Records produced.
    pub output_records: u64,
    /// Serialized bytes produced.
    pub output_bytes: u64,
    /// Placement-independent virtual cost of the task body.
    pub compute_cost: SimDuration,
    /// Task-local counters.
    pub counters: Counters,
    /// Task-local FM sketches.
    pub sketches: Sketches,
}

/// Statistics and timeline of one phase (map or reduce).
#[derive(Clone, Debug)]
pub struct PhaseStats {
    /// Per-task stats in task-id order.
    pub tasks: Vec<TaskStats>,
    /// The phase schedule produced by the cluster scheduler.
    pub schedule: Schedule,
}

impl PhaseStats {
    /// Total bytes produced by the phase.
    pub fn output_bytes(&self) -> u64 {
        self.tasks.iter().map(|t| t.output_bytes).sum()
    }

    /// Sample variance statistics of a counter across tasks, returned as
    /// `(mean, stddev)`. Tasks that never wrote the counter count as zero.
    pub fn counter_spread(&self, name: &str) -> (f64, f64) {
        let n = self.tasks.len();
        if n == 0 {
            return (0.0, 0.0);
        }
        let values: Vec<f64> = self
            .tasks
            .iter()
            .map(|t| t.counters.get(name) as f64)
            .collect();
        let mean = values.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return (mean, 0.0);
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        (mean, var.sqrt())
    }
}

/// Full statistics of one executed job.
#[derive(Clone, Debug)]
pub struct JobStats {
    /// Job name.
    pub name: String,
    /// Virtual start time.
    pub started: SimTime,
    /// Virtual completion time.
    pub finished: SimTime,
    /// Map phase stats.
    pub map: PhaseStats,
    /// Reduce phase stats (`None` for map-only jobs).
    pub reduce: Option<PhaseStats>,
    /// Counters merged across all tasks.
    pub counters: Counters,
    /// Sketches merged across all tasks.
    pub sketches: Sketches,
    /// Bytes moved through the shuffle.
    pub shuffle_bytes: u64,
    /// Bytes written to the DFS output file.
    pub output_bytes: u64,
    /// Crash-recovery ledger. Stays `RecoveryLog::default()` whenever the
    /// chaos layer is classified Quiet for the job — including
    /// configured-but-quiet plans — and then mirrors nothing into the
    /// counter set.
    pub recovery: RecoveryLog,
    /// Data-integrity ledger. Stays `IntegrityLog::default()` whenever
    /// the corruption layer is classified Quiet for the job — including
    /// configured-but-quiet plans — and then mirrors nothing into the
    /// counter set.
    pub integrity: IntegrityLog,
    /// Gray-failure ledger. Stays `PartitionLog::default()` whenever the
    /// partition layer is classified Quiet for the job — including
    /// configured-but-quiet plans — and then mirrors nothing into the
    /// counter set.
    pub partition: PartitionLog,
}

impl JobStats {
    /// Virtual wall-clock of the job.
    pub fn makespan(&self) -> SimDuration {
        self.finished.since(self.started)
    }

    /// Merges the counters and sketches of several executed jobs into one
    /// view — the job-boundary aggregation both the statistics catalog
    /// and the cross-job re-optimization store consume.
    pub fn merged(jobs: &[JobStats]) -> (Counters, Sketches) {
        let mut counters = Counters::new();
        let mut sketches = Sketches::new();
        for j in jobs {
            counters.merge(&j.counters);
            sketches.merge(&j.sketches);
        }
        (counters, sketches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: usize, counter: i64) -> TaskStats {
        let mut counters = Counters::new();
        counters.add("x", counter);
        TaskStats {
            task_id: id,
            input_records: 0,
            input_bytes: 0,
            output_records: 0,
            output_bytes: 10,
            compute_cost: SimDuration::ZERO,
            counters,
            sketches: Sketches::new(),
        }
    }

    #[test]
    fn counter_spread_mean_and_stddev() {
        let phase = PhaseStats {
            tasks: vec![task(0, 2), task(1, 4), task(2, 6)],
            schedule: Schedule::default(),
        };
        let (mean, sd) = phase.counter_spread("x");
        assert!((mean - 4.0).abs() < 1e-9);
        assert!((sd - 2.0).abs() < 1e-9);
        let (mean0, sd0) = phase.counter_spread("missing");
        assert_eq!(mean0, 0.0);
        assert_eq!(sd0, 0.0);
    }

    #[test]
    fn spread_degenerate_cases() {
        let empty = PhaseStats {
            tasks: vec![],
            schedule: Schedule::default(),
        };
        assert_eq!(empty.counter_spread("x"), (0.0, 0.0));
        let single = PhaseStats {
            tasks: vec![task(0, 5)],
            schedule: Schedule::default(),
        };
        assert_eq!(single.counter_spread("x"), (5.0, 0.0));
    }

    #[test]
    fn phase_output_bytes_sum() {
        let phase = PhaseStats {
            tasks: vec![task(0, 0), task(1, 0)],
            schedule: Schedule::default(),
        };
        assert_eq!(phase.output_bytes(), 20);
    }
}
