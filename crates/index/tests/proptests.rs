//! Property-based tests for the index substrates: R\*-tree queries equal
//! brute force, the grid index stays exact, and routing matches storage.

use efind::IndexAccessor;
use efind_cluster::Cluster;
use efind_common::Datum;
use efind_index::rtree::{dist2, Point, RStarTree, Rect};
use efind_index::spatial::{decode_neighbor, encode_point, SpatialGridConfig, SpatialGridIndex};
use efind_index::{DistBTree, KvStore, KvStoreConfig};
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<(Point, u64)>> {
    proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..max).prop_map(|coords| {
        coords
            .into_iter()
            .enumerate()
            .map(|(i, (x, y))| ([x, y], i as u64))
            .collect()
    })
}

fn brute_knn(points: &[(Point, u64)], q: Point, k: usize) -> Vec<(u64, f64)> {
    let mut all: Vec<(u64, f64)> = points.iter().map(|(p, id)| (*id, dist2(*p, q))).collect();
    all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rstar_knn_matches_brute_force(points in arb_points(400), qx in 0.0f64..100.0, qy in 0.0f64..100.0, k in 1usize..20) {
        let tree = RStarTree::bulk(points.iter().copied());
        tree.check_invariants();
        let got = tree.knn([qx, qy], k);
        let expected = brute_knn(&points, [qx, qy], k);
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            prop_assert!((g.2 - e.1).abs() < 1e-9, "dist {} vs {}", g.2, e.1);
        }
    }

    #[test]
    fn rstar_range_matches_brute_force(points in arb_points(400), x0 in 0.0f64..100.0, y0 in 0.0f64..100.0, w in 0.0f64..60.0, h in 0.0f64..60.0) {
        let tree = RStarTree::bulk(points.iter().copied());
        let rect = Rect::new([x0, y0], [x0 + w, y0 + h]);
        let mut got: Vec<u64> = tree.range(&rect).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = points
            .iter()
            .filter(|(p, _)| rect.contains(*p))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn grid_index_knn_is_exact(points in arb_points(300), qx in 0.0f64..100.0, qy in 0.0f64..100.0) {
        let k = 5usize.min(points.len());
        let idx = SpatialGridIndex::build(
            "p",
            &Cluster::edbt_testbed(),
            SpatialGridConfig { k, overlap: 2.0, ..SpatialGridConfig::default() },
            Rect::new([0.0, 0.0], [100.0, 100.0]),
            points.clone(),
        );
        let got = idx.lookup(&encode_point([qx, qy]));
        let expected = brute_knn(&points, [qx, qy], k);
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            let (_, _, d2) = decode_neighbor(g).unwrap();
            prop_assert!((d2 - e.1).abs() < 1e-9);
        }
    }

    #[test]
    fn kvstore_stores_and_finds_everything(keys in proptest::collection::btree_set(any::<i64>(), 1..300)) {
        let store = KvStore::build(
            "kv",
            &Cluster::edbt_testbed(),
            KvStoreConfig::default(),
            keys.iter().map(|&k| (Datum::Int(k), vec![Datum::Int(k.wrapping_mul(2))])),
        );
        for &k in &keys {
            prop_assert_eq!(store.lookup(&Datum::Int(k)), vec![Datum::Int(k.wrapping_mul(2))]);
        }
        prop_assert_eq!(store.len(), keys.len());
    }

    #[test]
    fn btree_range_scans_are_sorted_and_complete(keys in proptest::collection::btree_set(-1000i64..1000, 1..200), lo in -1000i64..1000, span in 0i64..500) {
        let tree = DistBTree::build(
            "bt",
            &Cluster::edbt_testbed(),
            7,
            2,
            keys.iter().map(|&k| (Datum::Int(k), vec![Datum::Int(k)])),
        );
        let hi = lo + span;
        let out = tree.range(&Datum::Int(lo), &Datum::Int(hi));
        let expected: Vec<i64> = keys.iter().copied().filter(|k| (lo..=hi).contains(k)).collect();
        let got: Vec<i64> = out.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }
}
