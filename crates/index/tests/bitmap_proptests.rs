//! Property-based tests for the compressed bitmap: it must behave exactly
//! like a `BTreeSet<u64>` on arbitrary sparse/dense row-id sets.

use std::collections::BTreeSet;

use efind_index::CompressedBitmap;
use proptest::prelude::*;

fn arb_rows() -> impl Strategy<Value = BTreeSet<u64>> {
    // A mix of clustered runs and isolated bits, the regimes WAH
    // compression must handle.
    proptest::collection::vec((0u64..5_000, 1u64..80), 0..30).prop_map(|runs| {
        let mut set = BTreeSet::new();
        for (start, len) in runs {
            for r in start..start + len {
                set.insert(r);
            }
        }
        set
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn iter_matches_reference(rows in arb_rows()) {
        let b = CompressedBitmap::from_sorted(rows.iter().copied());
        let got: Vec<u64> = b.iter().collect();
        let expected: Vec<u64> = rows.iter().copied().collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(b.count_ones(), rows.len() as u64);
    }

    #[test]
    fn contains_matches_reference(rows in arb_rows(), probes in proptest::collection::vec(0u64..6_000, 0..100)) {
        let b = CompressedBitmap::from_sorted(rows.iter().copied());
        for p in probes {
            prop_assert_eq!(b.contains(p), rows.contains(&p), "row {}", p);
        }
    }

    #[test]
    fn and_or_match_set_ops(a in arb_rows(), b in arb_rows()) {
        let ba = CompressedBitmap::from_sorted(a.iter().copied());
        let bb = CompressedBitmap::from_sorted(b.iter().copied());
        let and: Vec<u64> = ba.and(&bb).iter().collect();
        let or: Vec<u64> = ba.or(&bb).iter().collect();
        let expect_and: Vec<u64> = a.intersection(&b).copied().collect();
        let expect_or: Vec<u64> = a.union(&b).copied().collect();
        prop_assert_eq!(and, expect_and);
        prop_assert_eq!(or, expect_or);
    }

    #[test]
    fn dense_runs_stay_compact(start in 0u64..1_000, len in 64u64..4_000) {
        let b = CompressedBitmap::from_sorted(start..start + len);
        // A contiguous run must compress to O(1) words regardless of len.
        prop_assert!(b.words() <= 6, "{} words for a {}-bit run", b.words(), len);
    }
}
