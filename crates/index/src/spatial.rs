//! The distributed spatial index of the OSM experiment.
//!
//! §5.1: *"We partition the US map into 4×8 cells with small overlapping
//! regions, then build an R\*tree for each cell. Each R\*tree is replicated
//! to 3 machines."* A kNN lookup is served by the cell containing the
//! query point; thanks to the overlap margin the answer is usually
//! complete locally, and the index falls back to an exact multi-cell
//! search when the k-th neighbor might lie beyond the overlap guarantee —
//! so results are always exact.

use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::{Cluster, NodeId, SimDuration};
use efind_common::{fx_hash_bytes, Datum, FxHashSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::rtree::{dist2, Point, RStarTree, Rect};

/// Configuration of the grid index.
#[derive(Clone, Debug)]
pub struct SpatialGridConfig {
    /// Grid columns (paper: 4).
    pub grid_x: usize,
    /// Grid rows (paper: 8).
    pub grid_y: usize,
    /// Overlap margin around each cell, in coordinate units.
    pub overlap: f64,
    /// Replicas per cell tree (paper: 3).
    pub replication: usize,
    /// Neighbors returned per lookup (the paper's k = 10).
    pub k: usize,
    /// Fixed per-lookup service time (tree descent).
    pub base_serve: SimDuration,
    /// Additional service seconds per result byte.
    pub serve_secs_per_byte: f64,
    /// Placement seed.
    pub seed: u64,
}

impl Default for SpatialGridConfig {
    fn default() -> Self {
        SpatialGridConfig {
            grid_x: 4,
            grid_y: 8,
            overlap: 0.5,
            replication: 3,
            k: 10,
            base_serve: SimDuration::from_micros(100),
            serve_secs_per_byte: 5.0e-9,
            seed: 0x5AA7,
        }
    }
}

/// The grid partition scheme: a 2-D point key maps to its containing cell.
pub struct GridScheme {
    bbox: Rect,
    grid_x: usize,
    grid_y: usize,
    hosts: Vec<Vec<NodeId>>,
}

impl GridScheme {
    fn cell_of_point(&self, p: Point) -> usize {
        let fx = (p[0] - self.bbox.min[0]) / (self.bbox.max[0] - self.bbox.min[0]).max(1e-12);
        let fy = (p[1] - self.bbox.min[1]) / (self.bbox.max[1] - self.bbox.min[1]).max(1e-12);
        let ix = ((fx * self.grid_x as f64) as isize).clamp(0, self.grid_x as isize - 1) as usize;
        let iy = ((fy * self.grid_y as f64) as isize).clamp(0, self.grid_y as isize - 1) as usize;
        iy * self.grid_x + ix
    }

    fn cell_rect(&self, cell: usize) -> Rect {
        let ix = cell % self.grid_x;
        let iy = cell / self.grid_x;
        let w = (self.bbox.max[0] - self.bbox.min[0]) / self.grid_x as f64;
        let h = (self.bbox.max[1] - self.bbox.min[1]) / self.grid_y as f64;
        Rect::new(
            [
                self.bbox.min[0] + ix as f64 * w,
                self.bbox.min[1] + iy as f64 * h,
            ],
            [
                self.bbox.min[0] + (ix + 1) as f64 * w,
                self.bbox.min[1] + (iy + 1) as f64 * h,
            ],
        )
    }
}

impl PartitionScheme for GridScheme {
    fn num_partitions(&self) -> usize {
        self.grid_x * self.grid_y
    }

    fn partition_of(&self, key: &Datum) -> usize {
        match decode_point(key) {
            Some(p) => self.cell_of_point(p),
            None => 0,
        }
    }

    fn hosts(&self, partition: usize) -> Vec<NodeId> {
        self.hosts[partition].clone()
    }
}

/// Encodes a point as the lookup key `List[Float x, Float y]`.
pub fn encode_point(p: Point) -> Datum {
    Datum::List(vec![Datum::Float(p[0]), Datum::Float(p[1])])
}

/// Decodes a point lookup key.
pub fn decode_point(key: &Datum) -> Option<Point> {
    let list = key.as_list()?;
    if list.len() != 2 {
        return None;
    }
    Some([list[0].as_float()?, list[1].as_float()?])
}

/// Encodes one neighbor as `List[Int id, Float x, Float y, Float dist2]`.
pub fn encode_neighbor(id: u64, p: Point, d2: f64) -> Datum {
    Datum::List(vec![
        Datum::Int(id as i64),
        Datum::Float(p[0]),
        Datum::Float(p[1]),
        Datum::Float(d2),
    ])
}

/// Decodes a neighbor value back to `(id, point, dist2)`.
pub fn decode_neighbor(value: &Datum) -> Option<(u64, Point, f64)> {
    let list = value.as_list()?;
    if list.len() != 4 {
        return None;
    }
    Some((
        list[0].as_int()? as u64,
        [list[1].as_float()?, list[2].as_float()?],
        list[3].as_float()?,
    ))
}

/// The grid-of-R\*-trees distributed spatial index.
pub struct SpatialGridIndex {
    name: String,
    cells: Vec<RStarTree>,
    scheme: Arc<GridScheme>,
    config: SpatialGridConfig,
}

impl SpatialGridIndex {
    /// Builds the index over `points` covering `bbox`.
    pub fn build(
        name: impl Into<String>,
        cluster: &Cluster,
        config: SpatialGridConfig,
        bbox: Rect,
        points: impl IntoIterator<Item = (Point, u64)>,
    ) -> Self {
        let name = name.into();
        let n_nodes = cluster.num_nodes();
        let replication = config.replication.clamp(1, n_nodes as usize);
        let num_cells = config.grid_x * config.grid_y;
        let mut rng = SmallRng::seed_from_u64(config.seed ^ fx_hash_bytes(name.as_bytes()));
        let hosts: Vec<Vec<NodeId>> = (0..num_cells)
            .map(|c| {
                let mut hs = vec![NodeId((c % n_nodes as usize) as u16)];
                while hs.len() < replication {
                    let cand = NodeId(rng.gen_range(0..n_nodes));
                    if !hs.contains(&cand) {
                        hs.push(cand);
                    }
                }
                hs
            })
            .collect();
        let scheme = Arc::new(GridScheme {
            bbox,
            grid_x: config.grid_x,
            grid_y: config.grid_y,
            hosts,
        });

        let mut cells: Vec<RStarTree> = (0..num_cells).map(|_| RStarTree::new()).collect();
        for (p, id) in points {
            // Insert into the owning cell, plus any neighbor whose
            // overlap-expanded rectangle also covers the point.
            for (cell, tree) in cells.iter_mut().enumerate() {
                let rect = scheme.cell_rect(cell);
                let expanded = Rect::new(
                    [rect.min[0] - config.overlap, rect.min[1] - config.overlap],
                    [rect.max[0] + config.overlap, rect.max[1] + config.overlap],
                );
                if expanded.contains(p) {
                    tree.insert(p, id);
                }
            }
        }
        SpatialGridIndex {
            name,
            cells,
            scheme,
            config,
        }
    }

    /// Total stored points (counting overlap duplicates once per cell).
    pub fn stored_entries(&self) -> usize {
        self.cells.iter().map(RStarTree::len).sum()
    }

    /// Exact k-nearest neighbors of `q` (k from the configuration).
    pub fn knn(&self, q: Point) -> Vec<(u64, Point, f64)> {
        let k = self.config.k;
        let home = self.scheme.cell_of_point(q);
        let local = self.cells[home].knn(q, k);
        if local.len() == k {
            // Guarantee radius: every point within this distance of q is
            // present in the home cell (thanks to the overlap margin).
            let rect = self.scheme.cell_rect(home);
            let boundary = (q[0] - rect.min[0])
                .min(rect.max[0] - q[0])
                .min(q[1] - rect.min[1])
                .min(rect.max[1] - q[1])
                .max(0.0);
            let guard = boundary + self.config.overlap;
            if local[k - 1].2 <= guard * guard {
                return local;
            }
        }
        self.global_knn(q, k)
    }

    /// Exact kNN merging every cell whose rectangle could contribute.
    fn global_knn(&self, q: Point, k: usize) -> Vec<(u64, Point, f64)> {
        let mut order: Vec<(f64, usize)> = (0..self.cells.len())
            .map(|c| (self.scheme.cell_rect(c).min_dist2(q), c))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut best: Vec<(u64, Point, f64)> = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for (cell_d2, cell) in order {
            if best.len() == k && cell_d2 > best[k - 1].2 {
                break;
            }
            for cand in self.cells[cell].knn(q, k) {
                if seen.insert(cand.0) {
                    best.push(cand);
                }
            }
            best.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
            best.truncate(k);
        }
        best
    }

    /// Brute-force exact kNN over all stored points (test oracle).
    pub fn brute_knn(&self, q: Point, k: usize) -> Vec<(u64, Point, f64)> {
        let mut all: Vec<(u64, Point, f64)> = Vec::new();
        let mut seen: FxHashSet<u64> = FxHashSet::default();
        for cell in &self.cells {
            for (id, p) in cell.range(&cell.bbox()) {
                if seen.insert(id) {
                    all.push((id, p, dist2(p, q)));
                }
            }
        }
        all.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }
}

impl IndexAccessor for SpatialGridIndex {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        let Some(q) = decode_point(key) else {
            return Vec::new();
        };
        self.knn(q)
            .into_iter()
            .map(|(id, p, d2)| encode_neighbor(id, p, d2))
            .collect()
    }

    fn serve_time(&self, _key: &Datum, result_bytes: u64) -> SimDuration {
        self.config.base_serve
            + SimDuration::from_secs_f64(result_bytes as f64 * self.config.serve_secs_per_byte)
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        Some(self.scheme.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn build(n: usize, seed: u64) -> (SpatialGridIndex, Vec<(Point, u64)>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let points: Vec<(Point, u64)> = (0..n)
            .map(|i| {
                (
                    [rng.gen_range(0.0..40.0), rng.gen_range(0.0..20.0)],
                    i as u64,
                )
            })
            .collect();
        let idx = SpatialGridIndex::build(
            "osm",
            &Cluster::edbt_testbed(),
            SpatialGridConfig {
                k: 10,
                overlap: 1.0,
                ..SpatialGridConfig::default()
            },
            Rect::new([0.0, 0.0], [40.0, 20.0]),
            points.clone(),
        );
        (idx, points)
    }

    fn brute(points: &[(Point, u64)], q: Point, k: usize) -> Vec<(u64, f64)> {
        let mut all: Vec<(u64, f64)> = points.iter().map(|(p, id)| (*id, dist2(*p, q))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn knn_is_exact_everywhere() {
        let (idx, points) = build(3000, 5);
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            let q = [rng.gen_range(0.0..40.0), rng.gen_range(0.0..20.0)];
            let got = idx.knn(q);
            let expected = brute(&points, q, 10);
            assert_eq!(got.len(), 10);
            for (g, e) in got.iter().zip(&expected) {
                assert!(
                    (g.2 - e.1).abs() < 1e-9,
                    "query {q:?}: got d2={} expected {}",
                    g.2,
                    e.1
                );
            }
        }
    }

    #[test]
    fn knn_exact_on_cell_boundaries() {
        let (idx, points) = build(2000, 17);
        // Queries pinned exactly on internal grid lines.
        for q in [[10.0, 10.0], [20.0, 5.0], [30.0, 2.5], [10.0, 17.5]] {
            let got = idx.knn(q);
            let expected = brute(&points, q, 10);
            for (g, e) in got.iter().zip(&expected) {
                assert!((g.2 - e.1).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn overlap_duplicates_points_near_boundaries() {
        let (idx, points) = build(3000, 5);
        assert!(idx.stored_entries() > points.len());
    }

    #[test]
    fn accessor_roundtrip_through_datums() {
        let (idx, points) = build(500, 3);
        let q = [13.0, 7.0];
        let values = idx.lookup(&encode_point(q));
        assert_eq!(values.len(), 10);
        let first = decode_neighbor(&values[0]).unwrap();
        let expected = brute(&points, q, 1);
        assert_eq!(first.0, expected[0].0);
    }

    #[test]
    fn scheme_routes_to_containing_cell() {
        let (idx, _) = build(100, 1);
        let scheme = idx.partition_scheme().unwrap();
        assert_eq!(scheme.num_partitions(), 32);
        // Corner points route to corner cells.
        assert_eq!(scheme.partition_of(&encode_point([0.1, 0.1])), 0);
        assert_eq!(scheme.partition_of(&encode_point([39.9, 19.9])), 31);
        // Out-of-bbox points clamp rather than panic.
        let _ = scheme.partition_of(&encode_point([-5.0, 100.0]));
        for p in 0..scheme.num_partitions() {
            assert_eq!(scheme.hosts(p).len(), 3);
        }
    }

    #[test]
    fn malformed_key_returns_empty() {
        let (idx, _) = build(10, 1);
        assert!(idx.lookup(&Datum::Int(5)).is_empty());
        assert!(idx.lookup(&Datum::List(vec![Datum::Int(1)])).is_empty());
    }
}
