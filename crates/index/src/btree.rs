//! A range-partitioned distributed B-tree.
//!
//! Models the "practical scalable distributed B-tree" the paper cites
//! \[Aguilera et al., VLDB 2008\]: a root node describes the range
//! partition scheme of the second-level nodes (the paper uses exactly this
//! as the example of obtaining a partition scheme in §3.4). Each partition
//! holds a contiguous key range in a local B-tree; point lookups route
//! through the root, and range scans visit the covered partitions.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::{Cluster, NodeId, SimDuration};
use efind_common::{fx_hash_bytes, Datum};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The root router: partition `p` owns keys in
/// `(separators[p-1], separators[p]]`-style contiguous ranges.
pub struct RangeScheme {
    /// Upper-boundary key of each partition except the last (which is
    /// unbounded above).
    separators: Vec<Datum>,
    hosts: Vec<Vec<NodeId>>,
}

impl RangeScheme {
    fn route(&self, key: &Datum) -> usize {
        // First partition whose separator is >= key.
        self.separators.partition_point(|s| s < key)
    }
}

impl PartitionScheme for RangeScheme {
    fn num_partitions(&self) -> usize {
        self.hosts.len()
    }

    fn partition_of(&self, key: &Datum) -> usize {
        self.route(key)
    }

    fn hosts(&self, partition: usize) -> Vec<NodeId> {
        self.hosts[partition].clone()
    }
}

/// The distributed B-tree.
pub struct DistBTree {
    name: String,
    partitions: Vec<BTreeMap<Datum, Vec<Datum>>>,
    scheme: Arc<RangeScheme>,
    base_serve: SimDuration,
    serve_secs_per_byte: f64,
}

impl DistBTree {
    /// Builds a tree from `(key, values)` pairs split into `num_partitions`
    /// contiguous ranges of roughly equal cardinality.
    pub fn build(
        name: impl Into<String>,
        cluster: &Cluster,
        num_partitions: usize,
        replication: usize,
        pairs: impl IntoIterator<Item = (Datum, Vec<Datum>)>,
    ) -> Self {
        let name = name.into();
        let mut sorted: Vec<(Datum, Vec<Datum>)> = pairs.into_iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        sorted.dedup_by(|a, b| a.0 == b.0);

        let num_p = num_partitions.max(1).min(sorted.len().max(1));
        let per = sorted.len().div_ceil(num_p).max(1);
        let mut partitions: Vec<BTreeMap<Datum, Vec<Datum>>> = Vec::with_capacity(num_p);
        let mut separators = Vec::with_capacity(num_p.saturating_sub(1));
        let mut chunks = sorted.chunks(per).peekable();
        while let Some(chunk) = chunks.next() {
            if chunks.peek().is_some() {
                separators.push(chunk.last().expect("non-empty chunk").0.clone());
            }
            partitions.push(chunk.iter().cloned().collect());
        }
        while partitions.len() < num_p {
            partitions.push(BTreeMap::new());
        }

        let n_nodes = cluster.num_nodes();
        let replication = replication.clamp(1, n_nodes as usize);
        let mut rng = SmallRng::seed_from_u64(0xB7EE ^ fx_hash_bytes(name.as_bytes()));
        let hosts: Vec<Vec<NodeId>> = (0..partitions.len())
            .map(|p| {
                let mut hs = vec![NodeId((p % n_nodes as usize) as u16)];
                while hs.len() < replication {
                    let cand = NodeId(rng.gen_range(0..n_nodes));
                    if !hs.contains(&cand) {
                        hs.push(cand);
                    }
                }
                hs
            })
            .collect();

        DistBTree {
            name,
            partitions,
            scheme: Arc::new(RangeScheme { separators, hosts }),
            base_serve: SimDuration::from_micros(120),
            serve_secs_per_byte: 5.0e-9,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(BTreeMap::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inclusive range scan across partitions, in key order.
    pub fn range(&self, lo: &Datum, hi: &Datum) -> Vec<(Datum, Vec<Datum>)> {
        if lo > hi {
            return Vec::new();
        }
        let first = self.scheme.route(lo);
        let last = self.scheme.route(hi);
        let mut out = Vec::new();
        for p in first..=last.min(self.partitions.len() - 1) {
            for (k, v) in
                self.partitions[p].range((Bound::Included(lo.clone()), Bound::Included(hi.clone())))
            {
                out.push((k.clone(), v.clone()));
            }
        }
        out
    }

    /// The range partition scheme.
    pub fn scheme(&self) -> Arc<RangeScheme> {
        self.scheme.clone()
    }
}

impl IndexAccessor for DistBTree {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        let p = self.scheme.route(key).min(self.partitions.len() - 1);
        self.partitions[p].get(key).cloned().unwrap_or_default()
    }

    fn serve_time(&self, _key: &Datum, result_bytes: u64) -> SimDuration {
        self.base_serve + SimDuration::from_secs_f64(result_bytes as f64 * self.serve_secs_per_byte)
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        Some(self.scheme.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: i64, parts: usize) -> DistBTree {
        DistBTree::build(
            "bt",
            &Cluster::edbt_testbed(),
            parts,
            3,
            (0..n).map(|i| (Datum::Int(i), vec![Datum::Int(i * 10)])),
        )
    }

    #[test]
    fn point_lookups() {
        let t = tree(1000, 8);
        assert_eq!(t.len(), 1000);
        for i in [0i64, 499, 999] {
            assert_eq!(t.lookup(&Datum::Int(i)), vec![Datum::Int(i * 10)]);
        }
        assert!(t.lookup(&Datum::Int(-1)).is_empty());
        assert!(t.lookup(&Datum::Int(1000)).is_empty());
    }

    #[test]
    fn routing_matches_storage() {
        let t = tree(500, 7);
        for i in 0..500i64 {
            let k = Datum::Int(i);
            let p = t.scheme.partition_of(&k);
            assert!(t.partitions[p].contains_key(&k), "key {i} routed to {p}");
        }
    }

    #[test]
    fn ranges_are_contiguous() {
        let t = tree(100, 4);
        let mut last_max: Option<Datum> = None;
        for p in &t.partitions {
            if let (Some(min), Some(prev)) = (p.keys().next(), &last_max) {
                assert!(min > prev);
            }
            if let Some(max) = p.keys().next_back() {
                last_max = Some(max.clone());
            }
        }
    }

    #[test]
    fn range_scan_across_partitions() {
        let t = tree(100, 5);
        let out = t.range(&Datum::Int(15), &Datum::Int(45));
        assert_eq!(out.len(), 31);
        assert_eq!(out[0].0, Datum::Int(15));
        assert_eq!(out.last().unwrap().0, Datum::Int(45));
        // Sorted output.
        for w in out.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_and_inverted_ranges() {
        let t = tree(10, 2);
        assert!(t.range(&Datum::Int(5), &Datum::Int(4)).is_empty());
        assert!(t.range(&Datum::Int(100), &Datum::Int(200)).is_empty());
    }

    #[test]
    fn more_partitions_than_keys() {
        let t = tree(3, 10);
        assert_eq!(t.lookup(&Datum::Int(2)), vec![Datum::Int(20)]);
        assert_eq!(t.scheme().num_partitions(), 3);
    }

    #[test]
    fn duplicate_build_keys_deduped() {
        let t = DistBTree::build(
            "d",
            &Cluster::edbt_testbed(),
            2,
            1,
            vec![
                (Datum::Int(1), vec![Datum::Int(10)]),
                (Datum::Int(1), vec![Datum::Int(20)]),
            ],
        );
        assert_eq!(t.len(), 1);
    }
}
