//! An inverted text index.
//!
//! The paper's first motivating application is unstructured text
//! analysis: *"Text analysis often requires accessing indices, e.g.,
//! inverted indices, precomputed acronym dictionaries, and knowledge
//! bases"* (§1, citing Zobel et al.'s inverted files). This substrate is
//! a term → postings index with document frequencies, partitioned by
//! term hash across the cluster like a distributed search index.

use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::{Cluster, NodeId, SimDuration};
use efind_common::{fx_hash_datum, Datum, FxHashMap};

/// One posting: `(document id, term frequency)`.
pub type Posting = (u64, u32);

/// Term-hash partition scheme.
pub struct TermScheme {
    hosts: Vec<Vec<NodeId>>,
}

impl PartitionScheme for TermScheme {
    fn num_partitions(&self) -> usize {
        self.hosts.len()
    }

    fn partition_of(&self, key: &Datum) -> usize {
        (fx_hash_datum(key) % self.hosts.len() as u64) as usize
    }

    fn hosts(&self, partition: usize) -> Vec<NodeId> {
        self.hosts[partition].clone()
    }
}

/// The inverted index: term → posting list.
pub struct InvertedIndex {
    name: String,
    partitions: Vec<FxHashMap<String, Vec<Posting>>>,
    scheme: Arc<TermScheme>,
    base_serve: SimDuration,
    serve_secs_per_posting: f64,
}

impl InvertedIndex {
    /// Builds the index from a corpus of `(doc id, text)` documents,
    /// tokenizing on whitespace and lower-casing.
    pub fn build<'a>(
        name: impl Into<String>,
        cluster: &Cluster,
        num_partitions: usize,
        docs: impl IntoIterator<Item = (u64, &'a str)>,
    ) -> Self {
        let name = name.into();
        let n_nodes = cluster.num_nodes();
        let num_p = num_partitions.max(1);
        let hosts: Vec<Vec<NodeId>> = (0..num_p)
            .map(|p| {
                // Primary + two deterministic replicas.
                (0..3.min(n_nodes as usize))
                    .map(|r| NodeId(((p + r * 5 + r) % n_nodes as usize) as u16))
                    .collect::<Vec<_>>()
                    .into_iter()
                    .fold(Vec::new(), |mut acc, h| {
                        if !acc.contains(&h) {
                            acc.push(h);
                        }
                        acc
                    })
            })
            .collect();
        let scheme = Arc::new(TermScheme { hosts });

        let mut partitions: Vec<FxHashMap<String, Vec<Posting>>> =
            (0..num_p).map(|_| FxHashMap::default()).collect();
        for (doc, text) in docs {
            let mut counts: FxHashMap<String, u32> = FxHashMap::default();
            for token in text.split_whitespace() {
                *counts.entry(token.to_lowercase()).or_insert(0) += 1;
            }
            // efind-lint: allow(unordered-iter, per-term postings are sorted after the build; insertion order does not survive)
            for (term, tf) in counts {
                let p = scheme.partition_of(&Datum::Text(term.clone()));
                partitions[p].entry(term).or_default().push((doc, tf));
            }
        }
        for part in &mut partitions {
            for postings in part.values_mut() {
                postings.sort_unstable();
            }
        }
        InvertedIndex {
            name,
            partitions,
            scheme,
            base_serve: SimDuration::from_micros(200),
            serve_secs_per_posting: 2.0e-7,
        }
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.partitions.iter().map(FxHashMap::len).sum()
    }

    /// The posting list of a term (empty if absent).
    pub fn postings(&self, term: &str) -> &[Posting] {
        let key = Datum::Text(term.to_lowercase());
        let p = self.scheme.partition_of(&key);
        self.partitions[p]
            .get(term.to_lowercase().as_str())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Document frequency of a term.
    pub fn doc_frequency(&self, term: &str) -> usize {
        self.postings(term).len()
    }
}

impl IndexAccessor for InvertedIndex {
    fn name(&self) -> &str {
        &self.name
    }

    /// Lookup key: `Text term`. Result: one `List[Int doc, Int tf]` per
    /// posting.
    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        let Some(term) = key.as_text() else {
            return Vec::new();
        };
        self.postings(term)
            .iter()
            .map(|(doc, tf)| Datum::List(vec![Datum::Int(*doc as i64), Datum::Int(*tf as i64)]))
            .collect()
    }

    fn serve_time(&self, key: &Datum, _result_bytes: u64) -> SimDuration {
        let postings = key.as_text().map(|t| self.postings(t).len()).unwrap_or(0);
        self.base_serve + SimDuration::from_secs_f64(postings as f64 * self.serve_secs_per_posting)
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        Some(self.scheme.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> InvertedIndex {
        InvertedIndex::build(
            "inv",
            &Cluster::edbt_testbed(),
            8,
            vec![
                (1, "the quick brown fox"),
                (2, "the lazy dog"),
                (3, "The quick dog barks"),
            ],
        )
    }

    #[test]
    fn postings_are_complete_and_sorted() {
        let idx = index();
        assert_eq!(idx.postings("the"), &[(1, 1), (2, 1), (3, 1)]);
        assert_eq!(idx.postings("quick"), &[(1, 1), (3, 1)]);
        assert_eq!(idx.doc_frequency("dog"), 2);
        assert!(idx.postings("missing").is_empty());
    }

    #[test]
    fn tokenization_is_case_insensitive() {
        let idx = index();
        assert_eq!(idx.postings("THE"), idx.postings("the"));
    }

    #[test]
    fn term_frequencies_counted() {
        let idx = InvertedIndex::build(
            "inv",
            &Cluster::edbt_testbed(),
            4,
            vec![(7, "spam spam spam eggs")],
        );
        assert_eq!(idx.postings("spam"), &[(7, 3)]);
        assert_eq!(idx.postings("eggs"), &[(7, 1)]);
    }

    #[test]
    fn accessor_interface_roundtrip() {
        let idx = index();
        let values = idx.lookup(&Datum::Text("dog".into()));
        assert_eq!(values.len(), 2);
        assert_eq!(values[0], Datum::List(vec![Datum::Int(2), Datum::Int(1)]));
        assert!(idx.lookup(&Datum::Int(3)).is_empty());
        assert!(idx.partition_scheme().is_some());
        // Longer posting lists take longer to serve.
        let t_the = idx.serve_time(&Datum::Text("the".into()), 0);
        let t_fox = idx.serve_time(&Datum::Text("fox".into()), 0);
        assert!(t_the > t_fox);
    }

    #[test]
    fn scheme_routes_terms_to_their_partition() {
        let idx = index();
        let scheme = idx.scheme.clone();
        for term in ["the", "quick", "dog"] {
            let key = Datum::Text(term.into());
            let p = scheme.partition_of(&key);
            assert!(idx.partitions[p].contains_key(term));
            assert!(!scheme.hosts(p).is_empty());
        }
    }
}
