//! A compressed bitmap index.
//!
//! §1 motivates index-based joins "using bitmap indices", citing O'Neil's
//! Model 204. This module provides the substrate: a word-aligned-hybrid
//! (WAH-style) compressed bitmap — literal 63-bit words interleaved with
//! run-length fill words — and a bitmap index mapping low-cardinality
//! column values to row-id bitmaps, with membership probes exposed through
//! the EFind accessor interface.

use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::{Cluster, NodeId, SimDuration};
use efind_common::{fx_hash_datum, Datum, FxHashMap};

const BITS: u64 = 63;
const FILL_FLAG: u64 = 1 << 63;
const FILL_VALUE: u64 = 1 << 62;
const FILL_COUNT_MASK: u64 = FILL_VALUE - 1;
const LITERAL_MASK: u64 = (1 << BITS) - 1;

/// A WAH-style compressed bitmap over row ids, built in ascending order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompressedBitmap {
    /// Literal words (63 payload bits) and fill words
    /// (`FILL_FLAG | value<<62 | count`).
    words: Vec<u64>,
    /// The partially filled trailing literal word.
    tail: u64,
    /// Index of the word the tail belongs to.
    tail_word: u64,
    /// Number of set bits.
    ones: u64,
}

impl CompressedBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a bitmap from ascending, distinct row ids.
    pub fn from_sorted(rows: impl IntoIterator<Item = u64>) -> Self {
        let mut b = Self::new();
        for r in rows {
            b.push(r);
        }
        b
    }

    fn flush_through(&mut self, word: u64) {
        // Emit the current tail, then zero-fill up to (excluding) `word`.
        debug_assert!(word >= self.tail_word);
        if word == self.tail_word {
            return;
        }
        self.emit_literal(self.tail);
        self.tail = 0;
        let zero_words = word - self.tail_word - 1;
        if zero_words > 0 {
            self.emit_fill(false, zero_words);
        }
        self.tail_word = word;
    }

    fn emit_literal(&mut self, literal: u64) {
        if literal == 0 {
            self.emit_fill(false, 1);
        } else if literal == LITERAL_MASK {
            self.emit_fill(true, 1);
        } else {
            self.words.push(literal);
        }
    }

    fn emit_fill(&mut self, value: bool, count: u64) {
        if count == 0 {
            return;
        }
        // Merge with a preceding fill of the same polarity.
        if let Some(last) = self.words.last_mut() {
            if *last & FILL_FLAG != 0 {
                let last_value = *last & FILL_VALUE != 0;
                if last_value == value {
                    let merged = (*last & FILL_COUNT_MASK) + count;
                    *last = FILL_FLAG | if value { FILL_VALUE } else { 0 } | merged;
                    return;
                }
            }
        }
        self.words
            .push(FILL_FLAG | if value { FILL_VALUE } else { 0 } | count);
    }

    /// Appends a set bit at `row`, which must exceed every previous row.
    ///
    /// # Panics
    /// Panics if rows are pushed out of order.
    pub fn push(&mut self, row: u64) {
        let word = row / BITS;
        let bit = row % BITS;
        assert!(
            word > self.tail_word || (word == self.tail_word && self.tail >> bit == 0),
            "bitmap rows must be pushed in strictly ascending order"
        );
        self.flush_through(word);
        self.tail |= 1 << bit;
        self.ones += 1;
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.ones
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Number of compressed words (the storage/scan cost measure).
    pub fn words(&self) -> usize {
        self.words.len() + 1
    }

    /// Tests a single row id.
    pub fn contains(&self, row: u64) -> bool {
        let target_word = row / BITS;
        let bit = row % BITS;
        if target_word == self.tail_word {
            return self.tail >> bit & 1 == 1;
        }
        if target_word > self.tail_word {
            return false;
        }
        let mut word_idx = 0u64;
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let count = w & FILL_COUNT_MASK;
                if target_word < word_idx + count {
                    return w & FILL_VALUE != 0;
                }
                word_idx += count;
            } else {
                if target_word == word_idx {
                    return w >> bit & 1 == 1;
                }
                word_idx += 1;
            }
        }
        false
    }

    /// Iterates all set row ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let mut out = Vec::with_capacity(self.ones as usize);
        let mut word_idx = 0u64;
        for &w in &self.words {
            if w & FILL_FLAG != 0 {
                let count = w & FILL_COUNT_MASK;
                if w & FILL_VALUE != 0 {
                    for wi in word_idx..word_idx + count {
                        for b in 0..BITS {
                            out.push(wi * BITS + b);
                        }
                    }
                }
                word_idx += count;
            } else {
                let mut bits = w;
                while bits != 0 {
                    let b = bits.trailing_zeros() as u64;
                    out.push(word_idx * BITS + b);
                    bits &= bits - 1;
                }
                word_idx += 1;
            }
        }
        let mut bits = self.tail;
        while bits != 0 {
            let b = bits.trailing_zeros() as u64;
            out.push(self.tail_word * BITS + b);
            bits &= bits - 1;
        }
        out.into_iter()
    }

    /// Bitwise AND via merged iteration (materialized).
    pub fn and(&self, other: &CompressedBitmap) -> CompressedBitmap {
        let mut a = self.iter().peekable();
        let mut b = other.iter().peekable();
        let mut out = CompressedBitmap::new();
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    out.push(x);
                    a.next();
                    b.next();
                }
            }
        }
        out
    }

    /// Bitwise OR via merged iteration (materialized).
    pub fn or(&self, other: &CompressedBitmap) -> CompressedBitmap {
        let mut rows: Vec<u64> = self.iter().chain(other.iter()).collect();
        rows.sort_unstable();
        rows.dedup();
        CompressedBitmap::from_sorted(rows)
    }
}

/// A bitmap index: one compressed bitmap per distinct column value,
/// value-hash partitioned across the cluster.
pub struct BitmapIndex {
    name: String,
    bitmaps: FxHashMap<Datum, CompressedBitmap>,
    scheme: Arc<ValueScheme>,
    base_serve: SimDuration,
    serve_secs_per_word: f64,
}

/// Value-hash partition scheme for the bitmap index.
pub struct ValueScheme {
    hosts: Vec<Vec<NodeId>>,
}

impl PartitionScheme for ValueScheme {
    fn num_partitions(&self) -> usize {
        self.hosts.len()
    }

    fn partition_of(&self, key: &Datum) -> usize {
        // Keys are `[value, row]` probes or bare values: partition by the
        // value component so probes for one value co-locate.
        let value = key.as_list().and_then(|l| l.first()).unwrap_or(key);
        (fx_hash_datum(value) % self.hosts.len() as u64) as usize
    }

    fn hosts(&self, partition: usize) -> Vec<NodeId> {
        self.hosts[partition].clone()
    }
}

impl BitmapIndex {
    /// Builds the index from `(row id, value)` pairs (rows need not be
    /// sorted).
    pub fn build(
        name: impl Into<String>,
        cluster: &Cluster,
        num_partitions: usize,
        rows: impl IntoIterator<Item = (u64, Datum)>,
    ) -> Self {
        let name = name.into();
        let mut by_value: FxHashMap<Datum, Vec<u64>> = FxHashMap::default();
        for (row, value) in rows {
            by_value.entry(value).or_default().push(row);
        }
        let bitmaps = by_value
            .into_iter()
            .map(|(v, mut rows)| {
                rows.sort_unstable();
                rows.dedup();
                (v, CompressedBitmap::from_sorted(rows))
            })
            .collect();
        let n_nodes = cluster.num_nodes();
        let hosts = (0..num_partitions.max(1))
            .map(|p| {
                (0..3usize.min(n_nodes as usize))
                    .map(|r| NodeId(((p + r * 7 + r) % n_nodes as usize) as u16))
                    .fold(Vec::new(), |mut acc, h| {
                        if !acc.contains(&h) {
                            acc.push(h);
                        }
                        acc
                    })
            })
            .collect();
        BitmapIndex {
            name,
            bitmaps,
            scheme: Arc::new(ValueScheme { hosts }),
            base_serve: SimDuration::from_micros(80),
            serve_secs_per_word: 2.0e-8,
        }
    }

    /// The bitmap of a value (empty if absent).
    pub fn bitmap(&self, value: &Datum) -> Option<&CompressedBitmap> {
        self.bitmaps.get(value)
    }

    /// Number of distinct indexed values.
    pub fn cardinality(&self) -> usize {
        self.bitmaps.len()
    }
}

impl IndexAccessor for BitmapIndex {
    fn name(&self) -> &str {
        &self.name
    }

    /// Two probe forms:
    /// * `value` → `[Int count]` — the value's row count (bitmap COUNT);
    /// * `[value, Int row]` → `[Bool]` — membership of `row` in the
    ///   value's bitmap (the semijoin filter probe).
    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        if let Some(parts) = key.as_list() {
            if parts.len() == 2 {
                if let Some(row) = parts[1].as_int() {
                    let hit = self
                        .bitmaps
                        .get(&parts[0])
                        .is_some_and(|b| b.contains(row as u64));
                    return vec![Datum::Bool(hit)];
                }
            }
        }
        match self.bitmaps.get(key) {
            Some(b) => vec![Datum::Int(b.count_ones() as i64)],
            None => vec![Datum::Int(0)],
        }
    }

    fn serve_time(&self, key: &Datum, _result_bytes: u64) -> SimDuration {
        let value = key.as_list().and_then(|l| l.first()).unwrap_or(key);
        let words = self
            .bitmaps
            .get(value)
            .map(CompressedBitmap::words)
            .unwrap_or(1);
        self.base_serve + SimDuration::from_secs_f64(words as f64 * self.serve_secs_per_word)
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        Some(self.scheme.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_bitmap() {
        let b = CompressedBitmap::new();
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.contains(0));
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn roundtrip_sparse_and_dense() {
        let sparse: Vec<u64> = vec![0, 1, 62, 63, 1000, 100_000];
        let b = CompressedBitmap::from_sorted(sparse.clone());
        assert_eq!(b.iter().collect::<Vec<_>>(), sparse);
        for &r in &sparse {
            assert!(b.contains(r), "row {r}");
        }
        assert!(!b.contains(2));
        assert!(!b.contains(99_999));
        assert!(!b.contains(200_000));

        let dense: Vec<u64> = (0..500).collect();
        let d = CompressedBitmap::from_sorted(dense.clone());
        assert_eq!(d.iter().collect::<Vec<_>>(), dense);
        assert_eq!(d.count_ones(), 500);
    }

    #[test]
    fn long_runs_compress() {
        // A bitmap with one bit set at 10M: the gap compresses into a
        // couple of fill words.
        let b = CompressedBitmap::from_sorted(vec![3, 10_000_000]);
        assert!(b.words() < 8, "words = {}", b.words());
        assert!(b.contains(3));
        assert!(b.contains(10_000_000));
        assert!(!b.contains(5_000_000));
    }

    #[test]
    fn dense_runs_compress() {
        // 63*100 consecutive bits = fill words of ones.
        let b = CompressedBitmap::from_sorted(0..6300);
        assert!(b.words() < 8, "words = {}", b.words());
        assert_eq!(b.count_ones(), 6300);
        assert!(b.contains(6299));
        assert!(!b.contains(6300));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn out_of_order_push_rejected() {
        let mut b = CompressedBitmap::new();
        b.push(10);
        b.push(5);
    }

    #[test]
    fn and_or_match_set_semantics() {
        let a = CompressedBitmap::from_sorted(vec![1, 5, 100, 1000, 5000]);
        let b = CompressedBitmap::from_sorted(vec![5, 100, 2000, 5000]);
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![5, 100, 5000]);
        assert_eq!(
            a.or(&b).iter().collect::<Vec<_>>(),
            vec![1, 5, 100, 1000, 2000, 5000]
        );
    }

    fn index() -> BitmapIndex {
        BitmapIndex::build(
            "status",
            &Cluster::edbt_testbed(),
            8,
            (0..1000u64).map(|r| {
                (
                    r,
                    Datum::Text(if r % 10 == 0 { "active" } else { "inactive" }.into()),
                )
            }),
        )
    }

    #[test]
    fn index_counts_and_membership() {
        let idx = index();
        assert_eq!(idx.cardinality(), 2);
        assert_eq!(
            idx.lookup(&Datum::Text("active".into())),
            vec![Datum::Int(100)]
        );
        assert_eq!(
            idx.lookup(&Datum::Text("missing".into())),
            vec![Datum::Int(0)]
        );
        let probe_hit = Datum::List(vec![Datum::Text("active".into()), Datum::Int(40)]);
        assert_eq!(idx.lookup(&probe_hit), vec![Datum::Bool(true)]);
        let probe_miss = Datum::List(vec![Datum::Text("active".into()), Datum::Int(41)]);
        assert_eq!(idx.lookup(&probe_miss), vec![Datum::Bool(false)]);
    }

    #[test]
    fn probe_partitions_by_value() {
        let idx = index();
        let scheme = idx.partition_scheme().unwrap();
        let bare = Datum::Text("active".into());
        for row in [0i64, 7, 999] {
            let probe = Datum::List(vec![bare.clone(), Datum::Int(row)]);
            assert_eq!(scheme.partition_of(&probe), scheme.partition_of(&bare));
        }
    }

    #[test]
    fn serve_time_scales_with_bitmap_size() {
        let idx = BitmapIndex::build(
            "skew",
            &Cluster::edbt_testbed(),
            4,
            (0..100_000u64).map(|r| {
                (
                    r,
                    Datum::Int(if r % 1000 == 0 {
                        1
                    } else {
                        i64::from(r % 63 == 0) * 2
                    }),
                )
            }),
        );
        let rare = idx.serve_time(&Datum::Int(1), 0);
        let common = idx.serve_time(&Datum::Int(0), 0);
        assert!(common > rare, "{common} vs {rare}");
    }
}
