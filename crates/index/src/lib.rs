#![warn(missing_docs)]

//! Index substrates for the EFind reproduction.
//!
//! The paper's four index flexibility dimensions start with "*what* type of
//! index is used". This crate provides the types its experiments need —
//! each implementing [`efind::IndexAccessor`], several exposing a
//! [`efind::PartitionScheme`] for the index locality strategy:
//!
//! * [`kvstore`] — a Cassandra-like hash-partitioned, replicated key-value
//!   store (the paper's default index service; TPC-H and Synthetic).
//! * [`btree`] — a range-partitioned distributed B-tree with a root router
//!   (the "distributed B-tree" of the paper's related work \[2\]).
//! * [`rtree`] — an R\*-tree with best-first kNN search, the building
//!   block of the spatial index.
//! * [`spatial`] — a grid of replicated R\*-trees over 2-D points with
//!   exact k-nearest-neighbor lookup (the OSM kNN-join experiment).
//! * [`remote`] — a single-host remote service with configurable latency
//!   (the LOG experiment's geo-IP cloud service).
//! * [`dynamic`] — a computation-based index whose "lookup" runs a
//!   deterministic classifier (the knowledge-base service of Example 2.1:
//!   infinitely many valid keys, results computed, not stored).
//! * [`inverted`] — a term-partitioned inverted text index (the text
//!   analysis motivation of §1).
//! * [`bitmap`] — a WAH-compressed bitmap index (the "join using bitmap
//!   indices" motivation of §1, after Model 204).
//! * [`mem`] — a plain in-memory table, handy for tests and examples.

pub mod bitmap;
pub mod btree;
pub mod dynamic;
pub mod inverted;
pub mod kvstore;
pub mod mem;
pub mod remote;
pub mod rtree;
pub mod spatial;

pub use bitmap::{BitmapIndex, CompressedBitmap};
pub use btree::DistBTree;
pub use dynamic::TopicClassifier;
pub use inverted::InvertedIndex;
pub use kvstore::{KvStore, KvStoreConfig};
pub use mem::MemTable;
pub use remote::RemoteService;
pub use rtree::{Point, RStarTree, Rect};
pub use spatial::{SpatialGridConfig, SpatialGridIndex};
