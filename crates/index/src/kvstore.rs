//! A Cassandra-like distributed key-value store.
//!
//! The paper's experiments run "Apache Cassandra to provide index services
//! … divided into 32 partitions using the HashPartitioner of Apache
//! Hadoop. One index partition is replicated to three data nodes." This
//! module reproduces exactly that structure: hash partitioning over the
//! same `fx_hash_datum` the MapReduce shuffle uses (so EFind can
//! co-partition shuffles with the index), deterministic replica placement,
//! and a service-time model of `base + bytes/scan_bandwidth`.

use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::{Cluster, NodeId, SimDuration};
use efind_common::{fx_hash_bytes, fx_hash_datum, Datum, FxHashMap};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration of a [`KvStore`].
#[derive(Clone, Debug)]
pub struct KvStoreConfig {
    /// Number of hash partitions (paper: 32).
    pub num_partitions: usize,
    /// Replicas per partition (paper: 3).
    pub replication: usize,
    /// Fixed per-lookup service time (request handling, hash probe).
    pub base_serve: SimDuration,
    /// Additional service seconds per result byte (storage scan).
    pub serve_secs_per_byte: f64,
    /// Placement seed.
    pub seed: u64,
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        KvStoreConfig {
            num_partitions: 32,
            replication: 3,
            base_serve: SimDuration::from_micros(500),
            serve_secs_per_byte: 5.0e-9, // ~200 MB/s storage scan
            seed: 0xCA55,
        }
    }
}

/// Hash partition scheme shared with EFind's shuffle.
pub struct HashScheme {
    hosts: Vec<Vec<NodeId>>,
}

impl PartitionScheme for HashScheme {
    fn num_partitions(&self) -> usize {
        self.hosts.len()
    }

    fn partition_of(&self, key: &Datum) -> usize {
        (fx_hash_datum(key) % self.hosts.len() as u64) as usize
    }

    fn hosts(&self, partition: usize) -> Vec<NodeId> {
        self.hosts[partition].clone()
    }
}

/// The distributed key-value store.
pub struct KvStore {
    name: String,
    partitions: Vec<FxHashMap<Datum, Vec<Datum>>>,
    scheme: Arc<HashScheme>,
    config: KvStoreConfig,
}

impl KvStore {
    /// Builds a store over `cluster` from `(key, values)` pairs.
    pub fn build(
        name: impl Into<String>,
        cluster: &Cluster,
        config: KvStoreConfig,
        pairs: impl IntoIterator<Item = (Datum, Vec<Datum>)>,
    ) -> Self {
        let name = name.into();
        let num_p = config.num_partitions.max(1);
        let mut rng = SmallRng::seed_from_u64(config.seed ^ fx_hash_bytes(name.as_bytes()));
        let n_nodes = cluster.num_nodes();
        let replication = config.replication.clamp(1, n_nodes as usize);
        let hosts: Vec<Vec<NodeId>> = (0..num_p)
            .map(|p| {
                let mut hs = vec![NodeId((p % n_nodes as usize) as u16)];
                while hs.len() < replication {
                    let cand = NodeId(rng.gen_range(0..n_nodes));
                    if !hs.contains(&cand) {
                        hs.push(cand);
                    }
                }
                hs
            })
            .collect();
        let scheme = Arc::new(HashScheme { hosts });

        let mut partitions: Vec<FxHashMap<Datum, Vec<Datum>>> =
            (0..num_p).map(|_| FxHashMap::default()).collect();
        let mut store = KvStore {
            name,
            partitions: Vec::new(),
            scheme,
            config,
        };
        for (k, v) in pairs {
            let p = store.scheme.partition_of(&k);
            partitions[p].insert(k, v);
        }
        store.partitions = partitions;
        store
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(FxHashMap::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The partition scheme (also returned through the accessor trait).
    pub fn scheme(&self) -> Arc<HashScheme> {
        self.scheme.clone()
    }
}

impl IndexAccessor for KvStore {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        let p = self.scheme.partition_of(key);
        self.partitions[p].get(key).cloned().unwrap_or_default()
    }

    fn serve_time(&self, _key: &Datum, result_bytes: u64) -> SimDuration {
        self.config.base_serve
            + SimDuration::from_secs_f64(result_bytes as f64 * self.config.serve_secs_per_byte)
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        Some(self.scheme.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(n: i64) -> KvStore {
        KvStore::build(
            "kv",
            &Cluster::edbt_testbed(),
            KvStoreConfig::default(),
            (0..n).map(|i| (Datum::Int(i), vec![Datum::Text(format!("v{i}"))])),
        )
    }

    #[test]
    fn lookup_roundtrip() {
        let s = store(1000);
        assert_eq!(s.len(), 1000);
        for i in [0i64, 1, 500, 999] {
            assert_eq!(s.lookup(&Datum::Int(i)), vec![Datum::Text(format!("v{i}"))]);
        }
        assert!(s.lookup(&Datum::Int(5000)).is_empty());
    }

    #[test]
    fn partitions_spread_keys() {
        let s = store(10_000);
        let sizes: Vec<usize> = s.partitions.iter().map(FxHashMap::len).collect();
        assert_eq!(sizes.len(), 32);
        assert!(sizes.iter().all(|&n| n > 150), "{sizes:?}");
    }

    #[test]
    fn scheme_matches_storage() {
        let s = store(100);
        let scheme = s.scheme();
        for i in 0..100i64 {
            let k = Datum::Int(i);
            let p = scheme.partition_of(&k);
            assert!(s.partitions[p].contains_key(&k));
        }
    }

    #[test]
    fn replicas_distinct_and_sized() {
        let s = store(10);
        let scheme = s.scheme();
        for p in 0..scheme.num_partitions() {
            let hosts = scheme.hosts(p);
            assert_eq!(hosts.len(), 3);
            let mut sorted = hosts.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), 3);
        }
    }

    #[test]
    fn serve_time_grows_with_result_size() {
        let s = store(1);
        let small = s.serve_time(&Datum::Int(0), 10);
        let large = s.serve_time(&Datum::Int(0), 30_000);
        assert!(large > small);
        assert!(small >= SimDuration::from_micros(100));
    }

    #[test]
    fn accessor_exposes_scheme() {
        let s = store(1);
        assert!(s.partition_scheme().is_some());
    }
}
