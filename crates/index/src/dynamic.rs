//! A dynamic, computation-based index.
//!
//! The paper stresses that indices "can be dynamic in that given a search
//! key the return value is dynamically computed … this index can compute
//! results for any input text, thus the number of valid keys is infinite"
//! (§1, the knowledge-base service of Example 2.1). [`TopicClassifier`]
//! is that service: its "lookup" runs a deterministic scoring classifier
//! over the keywords in the key, so every distinct keyword list is a valid
//! key and nothing is stored.

use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::SimDuration;
use efind_common::{fx_hash_bytes, Datum};

/// A keyword-list → topic classifier posing as an index.
pub struct TopicClassifier {
    name: String,
    topics: Vec<String>,
    base_serve: SimDuration,
    per_keyword: SimDuration,
}

impl TopicClassifier {
    /// Creates a classifier over a fixed topic vocabulary. The per-lookup
    /// time models the ML inference: a base cost plus a per-keyword term.
    pub fn new(
        name: impl Into<String>,
        topics: Vec<String>,
        base_serve: SimDuration,
        per_keyword: SimDuration,
    ) -> Self {
        assert!(!topics.is_empty(), "classifier needs at least one topic");
        TopicClassifier {
            name: name.into(),
            topics,
            base_serve,
            per_keyword,
        }
    }

    /// A default news-ish vocabulary used by the tweet examples.
    pub fn news() -> Self {
        Self::new(
            "topic-kb",
            [
                "politics",
                "sports",
                "technology",
                "music",
                "weather",
                "finance",
                "health",
                "travel",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            SimDuration::from_millis(1),
            SimDuration::from_micros(50),
        )
    }

    fn keywords(key: &Datum) -> Vec<&str> {
        match key {
            Datum::Text(s) => s.split_whitespace().collect(),
            Datum::List(items) => items.iter().filter_map(Datum::as_text).collect(),
            _ => Vec::new(),
        }
    }

    /// Classifies a keyword list deterministically: each (keyword, topic)
    /// pair contributes a pseudo-random affinity score, the top-scoring
    /// topic wins.
    pub fn classify(&self, key: &Datum) -> Option<&str> {
        let words = Self::keywords(key);
        if words.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_score = 0u64;
        for (t, topic) in self.topics.iter().enumerate() {
            let score: u64 = words
                .iter()
                .map(|w| {
                    let mut buf = Vec::with_capacity(w.len() + topic.len() + 1);
                    buf.extend_from_slice(w.as_bytes());
                    buf.push(0);
                    buf.extend_from_slice(topic.as_bytes());
                    fx_hash_bytes(&buf) % 1000
                })
                .sum();
            if score > best_score {
                best_score = score;
                best = t;
            }
        }
        Some(&self.topics[best])
    }
}

impl IndexAccessor for TopicClassifier {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        self.classify(key)
            .map(|t| vec![Datum::Text(t.to_owned())])
            .unwrap_or_default()
    }

    fn serve_time(&self, key: &Datum, _result_bytes: u64) -> SimDuration {
        self.base_serve + self.per_keyword * Self::keywords(key).len() as u64
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_classification() {
        let c = TopicClassifier::news();
        let key = Datum::Text("game score playoff".into());
        let a = c.lookup(&key);
        let b = c.lookup(&key);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn any_key_is_valid() {
        let c = TopicClassifier::news();
        for text in ["xyzzy frobnicate", "a", "völkerball über"] {
            assert_eq!(c.lookup(&Datum::Text(text.into())).len(), 1);
        }
    }

    #[test]
    fn keyword_lists_accepted() {
        let c = TopicClassifier::news();
        let key = Datum::List(vec![
            Datum::Text("rain".into()),
            Datum::Text("storm".into()),
        ]);
        assert_eq!(c.lookup(&key).len(), 1);
    }

    #[test]
    fn empty_and_invalid_keys_yield_nothing() {
        let c = TopicClassifier::news();
        assert!(c.lookup(&Datum::Text("".into())).is_empty());
        assert!(c.lookup(&Datum::Int(5)).is_empty());
    }

    #[test]
    fn serve_time_scales_with_keywords() {
        let c = TopicClassifier::news();
        let short = c.serve_time(&Datum::Text("one".into()), 0);
        let long = c.serve_time(&Datum::Text("one two three four".into()), 0);
        assert!(long > short);
    }

    #[test]
    #[should_panic(expected = "at least one topic")]
    fn empty_vocabulary_rejected() {
        TopicClassifier::new("x", vec![], SimDuration::ZERO, SimDuration::ZERO);
    }
}
