//! An R\*-tree over 2-D points.
//!
//! Implements the structure from Beckmann et al. (SIGMOD 1990) that the
//! paper's OSM experiment builds per grid cell: ChooseSubtree with overlap
//! minimization at the leaf level, the R\* split (axis by minimum margin
//! sum, distribution by minimum overlap), and forced reinsertion of the
//! 30% outermost entries on first leaf overflow. Queries: best-first
//! k-nearest-neighbor search and rectangle range search.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A 2-D point.
pub type Point = [f64; 2];

/// Maximum entries per node.
const MAX_ENTRIES: usize = 32;
/// Minimum fill (40% of max, per the R\* paper's recommendation).
const MIN_ENTRIES: usize = MAX_ENTRIES * 2 / 5;
/// Fraction of entries force-reinserted on first leaf overflow (30%).
const REINSERT_COUNT: usize = (MAX_ENTRIES + 1) * 3 / 10;

/// An axis-aligned rectangle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// The degenerate rectangle of a single point.
    pub fn of_point(p: Point) -> Rect {
        Rect { min: p, max: p }
    }

    /// A rectangle from explicit corners.
    pub fn new(min: Point, max: Point) -> Rect {
        Rect { min, max }
    }

    /// The smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: [self.min[0].min(other.min[0]), self.min[1].min(other.min[1])],
            max: [self.max[0].max(other.max[0]), self.max[1].max(other.max[1])],
        }
    }

    /// Area (0 for degenerate rectangles).
    pub fn area(&self) -> f64 {
        (self.max[0] - self.min[0]).max(0.0) * (self.max[1] - self.min[1]).max(0.0)
    }

    /// Half-perimeter (the R\* margin measure).
    pub fn margin(&self) -> f64 {
        (self.max[0] - self.min[0]).max(0.0) + (self.max[1] - self.min[1]).max(0.0)
    }

    /// Overlap area with another rectangle.
    pub fn overlap(&self, other: &Rect) -> f64 {
        let w = (self.max[0].min(other.max[0]) - self.min[0].max(other.min[0])).max(0.0);
        let h = (self.max[1].min(other.max[1]) - self.min[1].max(other.min[1])).max(0.0);
        w * h
    }

    /// True if the rectangles intersect (boundaries included).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min[0] <= other.max[0]
            && other.min[0] <= self.max[0]
            && self.min[1] <= other.max[1]
            && other.min[1] <= self.max[1]
    }

    /// True if the point lies inside (boundaries included).
    pub fn contains(&self, p: Point) -> bool {
        p[0] >= self.min[0] && p[0] <= self.max[0] && p[1] >= self.min[1] && p[1] <= self.max[1]
    }

    /// Squared minimum distance from `p` to the rectangle.
    pub fn min_dist2(&self, p: Point) -> f64 {
        let dx = (self.min[0] - p[0]).max(0.0).max(p[0] - self.max[0]);
        let dy = (self.min[1] - p[1]).max(0.0).max(p[1] - self.max[1]);
        dx * dx + dy * dy
    }

    /// Area growth needed to also cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        [
            (self.min[0] + self.max[0]) / 2.0,
            (self.min[1] + self.max[1]) / 2.0,
        ]
    }
}

/// Squared Euclidean distance between points.
pub fn dist2(a: Point, b: Point) -> f64 {
    let dx = a[0] - b[0];
    let dy = a[1] - b[1];
    dx * dx + dy * dy
}

#[derive(Clone, Debug)]
struct LeafEntry {
    point: Point,
    id: u64,
}

#[derive(Debug)]
struct InnerEntry {
    rect: Rect,
    child: Box<Node>,
}

#[derive(Debug)]
enum Node {
    Leaf(Vec<LeafEntry>),
    Inner(Vec<InnerEntry>),
}

impl Node {
    fn bbox(&self) -> Rect {
        match self {
            Node::Leaf(entries) => entries
                .iter()
                .map(|e| Rect::of_point(e.point))
                .reduce(|a, b| a.union(&b))
                .unwrap_or(Rect::new([0.0, 0.0], [0.0, 0.0])),
            Node::Inner(entries) => entries
                .iter()
                .map(|e| e.rect)
                .reduce(|a, b| a.union(&b))
                .unwrap_or(Rect::new([0.0, 0.0], [0.0, 0.0])),
        }
    }

    fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }
}

enum Outcome {
    Fit,
    Split(Box<Node>),
    Reinsert(Vec<LeafEntry>),
}

/// The R\*-tree.
#[derive(Debug)]
pub struct RStarTree {
    root: Node,
    len: usize,
}

impl Default for RStarTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RStarTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RStarTree {
            root: Node::Leaf(Vec::new()),
            len: 0,
        }
    }

    /// Builds a tree by inserting all points.
    pub fn bulk(points: impl IntoIterator<Item = (Point, u64)>) -> Self {
        let mut t = Self::new();
        for (p, id) in points {
            t.insert(p, id);
        }
        t
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no points are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounding box of all points.
    pub fn bbox(&self) -> Rect {
        self.root.bbox()
    }

    /// Inserts a point with an id.
    pub fn insert(&mut self, point: Point, id: u64) {
        self.len += 1;
        self.insert_entry(LeafEntry { point, id }, true);
    }

    fn insert_entry(&mut self, entry: LeafEntry, allow_reinsert: bool) {
        match insert_rec(&mut self.root, entry, allow_reinsert) {
            Outcome::Fit => {}
            Outcome::Split(sibling) => {
                let old = std::mem::replace(&mut self.root, Node::Inner(Vec::new()));
                let entries = vec![
                    InnerEntry {
                        rect: old.bbox(),
                        child: Box::new(old),
                    },
                    InnerEntry {
                        rect: sibling.bbox(),
                        child: sibling,
                    },
                ];
                self.root = Node::Inner(entries);
            }
            Outcome::Reinsert(entries) => {
                for e in entries {
                    self.insert_entry(e, false);
                }
            }
        }
    }

    /// The `k` nearest neighbors of `q` with squared distances, ascending.
    /// Best-first search (Hjaltason & Samet).
    pub fn knn(&self, q: Point, k: usize) -> Vec<(u64, Point, f64)> {
        let mut out = Vec::with_capacity(k);
        if k == 0 || self.is_empty() {
            return out;
        }
        enum Item<'a> {
            Node(&'a Node),
            Point(&'a LeafEntry),
        }
        struct HeapEntry<'a> {
            d2: f64,
            seq: usize,
            item: Item<'a>,
        }
        impl PartialEq for HeapEntry<'_> {
            fn eq(&self, other: &Self) -> bool {
                self.d2 == other.d2 && self.seq == other.seq
            }
        }
        impl Eq for HeapEntry<'_> {}
        impl PartialOrd for HeapEntry<'_> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for HeapEntry<'_> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.d2.total_cmp(&other.d2).then(self.seq.cmp(&other.seq))
            }
        }
        let mut heap: BinaryHeap<Reverse<HeapEntry>> = BinaryHeap::new();
        let mut seq = 0usize;
        heap.push(Reverse(HeapEntry {
            d2: 0.0,
            seq,
            item: Item::Node(&self.root),
        }));
        while let Some(Reverse(HeapEntry { d2, item, .. })) = heap.pop() {
            match item {
                Item::Point(e) => {
                    out.push((e.id, e.point, d2));
                    if out.len() == k {
                        break;
                    }
                }
                Item::Node(Node::Leaf(entries)) => {
                    for e in entries {
                        seq += 1;
                        heap.push(Reverse(HeapEntry {
                            d2: dist2(e.point, q),
                            seq,
                            item: Item::Point(e),
                        }));
                    }
                }
                Item::Node(Node::Inner(entries)) => {
                    for e in entries {
                        seq += 1;
                        heap.push(Reverse(HeapEntry {
                            d2: e.rect.min_dist2(q),
                            seq,
                            item: Item::Node(&e.child),
                        }));
                    }
                }
            }
        }
        out
    }

    /// All points inside `rect` (boundaries included).
    pub fn range(&self, rect: &Rect) -> Vec<(u64, Point)> {
        let mut out = Vec::new();
        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            match node {
                Node::Leaf(entries) => {
                    for e in entries {
                        if rect.contains(e.point) {
                            out.push((e.id, e.point));
                        }
                    }
                }
                Node::Inner(entries) => {
                    for e in entries {
                        if rect.intersects(&e.rect) {
                            stack.push(&e.child);
                        }
                    }
                }
            }
        }
        out
    }

    /// Checks structural invariants (tests/debugging): fan-out bounds and
    /// bounding-box containment. Returns the tree height.
    pub fn check_invariants(&self) -> usize {
        fn rec(node: &Node, is_root: bool) -> usize {
            match node {
                Node::Leaf(entries) => {
                    assert!(entries.len() <= MAX_ENTRIES, "leaf overflow");
                    if !is_root {
                        assert!(entries.len() >= MIN_ENTRIES.min(1), "leaf underflow");
                    }
                    1
                }
                Node::Inner(entries) => {
                    assert!(!entries.is_empty() && entries.len() <= MAX_ENTRIES);
                    let mut height = None;
                    for e in entries {
                        let child_box = e.child.bbox();
                        assert!(
                            e.rect.union(&child_box) == e.rect,
                            "child bbox escapes parent rect"
                        );
                        let h = rec(&e.child, false);
                        if let Some(prev) = height {
                            assert_eq!(prev, h, "unbalanced tree");
                        }
                        height = Some(h);
                    }
                    height.unwrap() + 1
                }
            }
        }
        rec(&self.root, true)
    }
}

fn insert_rec(node: &mut Node, entry: LeafEntry, allow_reinsert: bool) -> Outcome {
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() <= MAX_ENTRIES {
                Outcome::Fit
            } else if allow_reinsert {
                // Forced reinsertion: evict the entries furthest from the
                // node center and push them back into the tree.
                let center = Node::Leaf(std::mem::take(entries));
                let (mut all, center_point) = match center {
                    Node::Leaf(v) => {
                        let bbox = v
                            .iter()
                            .map(|e| Rect::of_point(e.point))
                            .reduce(|a, b| a.union(&b))
                            .expect("non-empty");
                        (v, bbox.center())
                    }
                    Node::Inner(_) => unreachable!(),
                };
                all.sort_by(|a, b| {
                    dist2(b.point, center_point).total_cmp(&dist2(a.point, center_point))
                });
                let reinsert: Vec<LeafEntry> = all.drain(..REINSERT_COUNT).collect();
                *entries = all;
                Outcome::Reinsert(reinsert)
            } else {
                let sibling = split_leaf(entries);
                Outcome::Split(Box::new(Node::Leaf(sibling)))
            }
        }
        Node::Inner(entries) => {
            let i = choose_subtree(entries, entry.point);
            let outcome = insert_rec(&mut entries[i].child, entry, allow_reinsert);
            entries[i].rect = entries[i].child.bbox();
            match outcome {
                Outcome::Fit => Outcome::Fit,
                Outcome::Reinsert(r) => Outcome::Reinsert(r),
                Outcome::Split(sibling) => {
                    entries.push(InnerEntry {
                        rect: sibling.bbox(),
                        child: sibling,
                    });
                    if entries.len() <= MAX_ENTRIES {
                        Outcome::Fit
                    } else {
                        let sibling = split_inner(entries);
                        Outcome::Split(Box::new(Node::Inner(sibling)))
                    }
                }
            }
        }
    }
}

/// R\* ChooseSubtree: minimum overlap enlargement when children are
/// leaves, minimum area enlargement otherwise (area as tie-break).
fn choose_subtree(entries: &[InnerEntry], point: Point) -> usize {
    let prect = Rect::of_point(point);
    let children_are_leaves = entries[0].child.is_leaf();
    let mut best = 0usize;
    let mut best_key = (f64::MAX, f64::MAX, f64::MAX);
    for (i, e) in entries.iter().enumerate() {
        let enlarged = e.rect.union(&prect);
        let key = if children_are_leaves {
            let overlap_delta: f64 = entries
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, o)| enlarged.overlap(&o.rect) - e.rect.overlap(&o.rect))
                .sum();
            (overlap_delta, e.rect.enlargement(&prect), e.rect.area())
        } else {
            (e.rect.enlargement(&prect), e.rect.area(), 0.0)
        };
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// The R\* split applied to sortable items: picks the axis with minimum
/// total margin over all legal distributions, then the distribution with
/// minimum overlap (area as tie-break). Returns the split position in the
/// sorted order of the chosen axis, and reorders `items` accordingly.
fn rstar_split_positions<T>(items: &mut [T], rect_of: impl Fn(&T) -> Rect) -> usize {
    let total = items.len();
    debug_assert!(total == MAX_ENTRIES + 1);
    let mut best_axis = 0;
    let mut best_axis_margin = f64::MAX;

    for axis in 0..2 {
        items.sort_by(|a, b| {
            let (ra, rb) = (rect_of(a), rect_of(b));
            (ra.min[axis], ra.max[axis])
                .partial_cmp(&(rb.min[axis], rb.max[axis]))
                .unwrap()
        });
        let mut margin_sum = 0.0;
        for split in MIN_ENTRIES..=(total - MIN_ENTRIES) {
            let left = items[..split]
                .iter()
                .map(&rect_of)
                .reduce(|a, b| a.union(&b))
                .unwrap();
            let right = items[split..]
                .iter()
                .map(&rect_of)
                .reduce(|a, b| a.union(&b))
                .unwrap();
            margin_sum += left.margin() + right.margin();
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = axis;
        }
    }

    items.sort_by(|a, b| {
        let (ra, rb) = (rect_of(a), rect_of(b));
        (ra.min[best_axis], ra.max[best_axis])
            .partial_cmp(&(rb.min[best_axis], rb.max[best_axis]))
            .unwrap()
    });
    let mut best_split = MIN_ENTRIES;
    let mut best_key = (f64::MAX, f64::MAX);
    for split in MIN_ENTRIES..=(total - MIN_ENTRIES) {
        let left = items[..split]
            .iter()
            .map(&rect_of)
            .reduce(|a, b| a.union(&b))
            .unwrap();
        let right = items[split..]
            .iter()
            .map(&rect_of)
            .reduce(|a, b| a.union(&b))
            .unwrap();
        let key = (left.overlap(&right), left.area() + right.area());
        if key < best_key {
            best_key = key;
            best_split = split;
        }
    }
    best_split
}

fn split_leaf(entries: &mut Vec<LeafEntry>) -> Vec<LeafEntry> {
    let split = rstar_split_positions(entries, |e| Rect::of_point(e.point));
    entries.split_off(split)
}

fn split_inner(entries: &mut Vec<InnerEntry>) -> Vec<InnerEntry> {
    let split = rstar_split_positions(entries, |e| e.rect);
    entries.split_off(split)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<(Point, u64)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    [rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)],
                    i as u64,
                )
            })
            .collect()
    }

    fn brute_knn(points: &[(Point, u64)], q: Point, k: usize) -> Vec<(u64, f64)> {
        let mut all: Vec<(u64, f64)> = points.iter().map(|(p, id)| (*id, dist2(*p, q))).collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    #[test]
    fn empty_tree_queries() {
        let t = RStarTree::new();
        assert!(t.is_empty());
        assert!(t.knn([0.0, 0.0], 5).is_empty());
        assert!(t.range(&Rect::new([0.0, 0.0], [10.0, 10.0])).is_empty());
    }

    #[test]
    fn invariants_hold_as_tree_grows() {
        let mut t = RStarTree::new();
        for (i, (p, id)) in random_points(2000, 42).into_iter().enumerate() {
            t.insert(p, id);
            if i % 251 == 0 {
                t.check_invariants();
            }
        }
        assert_eq!(t.len(), 2000);
        let h = t.check_invariants();
        assert!(h >= 2, "2000 points should not fit one node: height {h}");
    }

    #[test]
    fn range_over_bbox_returns_everything() {
        let points = random_points(1000, 7);
        let t = RStarTree::bulk(points.clone());
        let found = t.range(&t.bbox());
        assert_eq!(found.len(), 1000);
    }

    #[test]
    fn range_matches_brute_force() {
        let points = random_points(800, 3);
        let t = RStarTree::bulk(points.clone());
        let q = Rect::new([20.0, 30.0], [60.0, 70.0]);
        let mut got: Vec<u64> = t.range(&q).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = points
            .iter()
            .filter(|(p, _)| q.contains(*p))
            .map(|(_, id)| *id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
        assert!(!got.is_empty());
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = random_points(1200, 9);
        let t = RStarTree::bulk(points.clone());
        for q in [[50.0, 50.0], [0.0, 0.0], [99.0, 1.0]] {
            let got = t.knn(q, 10);
            let expected = brute_knn(&points, q, 10);
            assert_eq!(got.len(), 10);
            for (g, e) in got.iter().zip(&expected) {
                assert!(
                    (g.2 - e.1).abs() < 1e-9,
                    "distance mismatch at {q:?}: {} vs {}",
                    g.2,
                    e.1
                );
            }
        }
    }

    #[test]
    fn knn_distances_ascend() {
        let t = RStarTree::bulk(random_points(500, 11));
        let got = t.knn([25.0, 75.0], 50);
        for w in got.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
    }

    #[test]
    fn knn_k_larger_than_len() {
        let t = RStarTree::bulk(random_points(5, 1));
        assert_eq!(t.knn([0.0, 0.0], 100).len(), 5);
    }

    #[test]
    fn duplicate_points_supported() {
        let mut t = RStarTree::new();
        for i in 0..100 {
            t.insert([5.0, 5.0], i);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.knn([5.0, 5.0], 100).len(), 100);
        t.check_invariants();
    }

    #[test]
    fn rect_math() {
        let a = Rect::new([0.0, 0.0], [2.0, 2.0]);
        let b = Rect::new([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.area(), 4.0);
        assert_eq!(a.margin(), 4.0);
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(a.union(&b), Rect::new([0.0, 0.0], [3.0, 3.0]));
        assert!(a.intersects(&b));
        assert!(a.contains([1.0, 1.0]));
        assert!(!a.contains([2.5, 0.5]));
        assert_eq!(a.min_dist2([4.0, 2.0]), 4.0);
        assert_eq!(a.min_dist2([1.0, 1.0]), 0.0);
        assert_eq!(a.enlargement(&b), 5.0);
        assert_eq!(a.center(), [1.0, 1.0]);
    }

    #[test]
    fn clustered_data_stays_balanced() {
        // Pathological insert order: sorted along a line.
        let mut t = RStarTree::new();
        for i in 0..1500u64 {
            t.insert([i as f64, (i % 7) as f64], i);
        }
        let h = t.check_invariants();
        assert!(h <= 4, "height {h} too tall for 1500 points");
    }
}
