//! A plain in-memory table accessor.

use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::SimDuration;
use efind_common::{Datum, FxHashMap};

/// An unpartitioned in-memory key → values table.
///
/// The simplest possible index: useful in tests, examples, and as the
/// storage behind quick experiments. Exposes no partition scheme, so index
/// locality does not apply (like the paper's single-host services).
pub struct MemTable {
    name: String,
    data: FxHashMap<Datum, Vec<Datum>>,
    serve: SimDuration,
}

impl MemTable {
    /// Builds a table from `(key, values)` pairs with a fixed service time.
    pub fn new(
        name: impl Into<String>,
        pairs: impl IntoIterator<Item = (Datum, Vec<Datum>)>,
        serve: SimDuration,
    ) -> Self {
        MemTable {
            name: name.into(),
            data: pairs.into_iter().collect(),
            serve,
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the table holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl IndexAccessor for MemTable {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        self.data.get(key).cloned().unwrap_or_default()
    }

    fn serve_time(&self, _key: &Datum, _result_bytes: u64) -> SimDuration {
        self.serve
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_hits_and_misses() {
        let t = MemTable::new(
            "t",
            vec![(Datum::Int(1), vec![Datum::Text("a".into())])],
            SimDuration::from_micros(10),
        );
        assert_eq!(t.lookup(&Datum::Int(1)), vec![Datum::Text("a".into())]);
        assert!(t.lookup(&Datum::Int(2)).is_empty());
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert!(t.partition_scheme().is_none());
        assert_eq!(
            t.serve_time(&Datum::Int(1), 0),
            SimDuration::from_micros(10)
        );
    }
}
