//! A single-host remote service index.
//!
//! The LOG experiment's geo-IP service: *"It uses a cloud service to look
//! up the geographical region for an IP address. The cloud service runs on
//! a single node with Java RMI interface … incurs a T = 0.8 ms delay for a
//! lookup. … we introduce an extra 0, 1 ms, …, 5 ms to the lookup"*
//! (§5.2). Single-host, so no partition scheme — index locality does not
//! apply, exactly as in Fig. 11(a).

use std::sync::Arc;

use efind::{IndexAccessor, PartitionScheme};
use efind_cluster::SimDuration;
use efind_common::{Datum, FxHashMap};

/// The lookup function a [`RemoteService`] wraps.
pub type LookupFn = Box<dyn Fn(&Datum) -> Vec<Datum> + Send + Sync>;

/// A remote service answering lookups through a user-provided function,
/// with a configurable per-lookup delay.
pub struct RemoteService {
    name: String,
    delay: SimDuration,
    func: LookupFn,
}

impl RemoteService {
    /// The paper's base service delay (0.8 ms).
    pub const BASE_DELAY: SimDuration = SimDuration::from_micros(800);

    /// Wraps a lookup function with a fixed delay.
    pub fn new(
        name: impl Into<String>,
        delay: SimDuration,
        func: impl Fn(&Datum) -> Vec<Datum> + Send + Sync + 'static,
    ) -> Self {
        RemoteService {
            name: name.into(),
            delay,
            func: Box::new(func),
        }
    }

    /// Convenience: a remote service backed by a static table.
    pub fn table(
        name: impl Into<String>,
        delay: SimDuration,
        pairs: impl IntoIterator<Item = (Datum, Vec<Datum>)>,
    ) -> Self {
        let table: FxHashMap<Datum, Vec<Datum>> = pairs.into_iter().collect();
        Self::new(name, delay, move |k| {
            table.get(k).cloned().unwrap_or_default()
        })
    }

    /// The configured per-lookup delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }
}

impl IndexAccessor for RemoteService {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        (self.func)(key)
    }

    fn serve_time(&self, _key: &Datum, _result_bytes: u64) -> SimDuration {
        self.delay
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_backed_lookup() {
        let svc = RemoteService::new("doubler", SimDuration::from_millis(1), |k| {
            k.as_int()
                .map(|v| vec![Datum::Int(v * 2)])
                .unwrap_or_default()
        });
        assert_eq!(svc.lookup(&Datum::Int(21)), vec![Datum::Int(42)]);
        assert!(svc.lookup(&Datum::Text("x".into())).is_empty());
        assert_eq!(
            svc.serve_time(&Datum::Int(0), 100),
            SimDuration::from_millis(1)
        );
        assert!(svc.partition_scheme().is_none());
    }

    #[test]
    fn table_backed_lookup() {
        let svc = RemoteService::table(
            "geo",
            RemoteService::BASE_DELAY,
            vec![(
                Datum::Text("1.2.3.4".into()),
                vec![Datum::Text("us-west".into())],
            )],
        );
        assert_eq!(
            svc.lookup(&Datum::Text("1.2.3.4".into())),
            vec![Datum::Text("us-west".into())]
        );
        assert_eq!(svc.delay(), SimDuration::from_micros(800));
    }
}
