//! A single-host remote service index.
//!
//! The LOG experiment's geo-IP service: *"It uses a cloud service to look
//! up the geographical region for an IP address. The cloud service runs on
//! a single node with Java RMI interface … incurs a T = 0.8 ms delay for a
//! lookup. … we introduce an extra 0, 1 ms, …, 5 ms to the lookup"*
//! (§5.2). Single-host, so no partition scheme — index locality does not
//! apply, exactly as in Fig. 11(a).

use std::sync::Arc;

use efind::{IndexAccessor, LookupResult, PartitionScheme};
use efind_cluster::SimDuration;
use efind_common::{Datum, FxHashMap};

/// The fallible lookup function a [`RemoteService`] wraps. Remote
/// services are exactly the accessors where "the key has no entry" and
/// "the service did not answer" are different events, so the canonical
/// interface is the fallible one; the infallible [`LookupFn`]-style
/// constructors wrap into it.
pub type TryLookupFn = Box<dyn Fn(&Datum) -> LookupResult + Send + Sync>;

/// The infallible lookup function accepted by [`RemoteService::new`].
pub type LookupFn = Box<dyn Fn(&Datum) -> Vec<Datum> + Send + Sync>;

/// A remote service answering lookups through a user-provided function,
/// with a configurable per-lookup delay.
pub struct RemoteService {
    name: String,
    delay: SimDuration,
    func: TryLookupFn,
}

impl RemoteService {
    /// The paper's base service delay (0.8 ms).
    pub const BASE_DELAY: SimDuration = SimDuration::from_micros(800);

    /// Wraps an infallible lookup function with a fixed delay. Every
    /// answer — including an empty one — is a [`LookupResult::Hit`].
    pub fn new(
        name: impl Into<String>,
        delay: SimDuration,
        func: impl Fn(&Datum) -> Vec<Datum> + Send + Sync + 'static,
    ) -> Self {
        Self::fallible(name, delay, move |k| LookupResult::Hit(func(k)))
    }

    /// Wraps a fallible lookup function: the service decides per key
    /// whether it answers ([`LookupResult::Hit`]), reports the key absent
    /// ([`LookupResult::Miss`]), or fails ([`LookupResult::Failed`] — fed
    /// into the accessor path's retry machinery).
    pub fn fallible(
        name: impl Into<String>,
        delay: SimDuration,
        func: impl Fn(&Datum) -> LookupResult + Send + Sync + 'static,
    ) -> Self {
        RemoteService {
            name: name.into(),
            delay,
            func: Box::new(func),
        }
    }

    /// Convenience: a remote service backed by a static table. A key
    /// absent from the table is reported as [`LookupResult::Miss`] — not
    /// as a silent empty result — so miss and failure counters stay
    /// distinguishable downstream.
    pub fn table(
        name: impl Into<String>,
        delay: SimDuration,
        pairs: impl IntoIterator<Item = (Datum, Vec<Datum>)>,
    ) -> Self {
        let table: FxHashMap<Datum, Vec<Datum>> = pairs.into_iter().collect();
        Self::fallible(name, delay, move |k| match table.get(k) {
            Some(values) => LookupResult::Hit(values.clone()),
            None => LookupResult::Miss,
        })
    }

    /// The configured per-lookup delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }
}

impl IndexAccessor for RemoteService {
    fn name(&self) -> &str {
        &self.name
    }

    fn lookup(&self, key: &Datum) -> Vec<Datum> {
        match (self.func)(key) {
            LookupResult::Hit(values) => values,
            LookupResult::Miss | LookupResult::Failed(_) => Vec::new(),
        }
    }

    fn try_lookup(&self, key: &Datum) -> LookupResult {
        (self.func)(key)
    }

    fn serve_time(&self, _key: &Datum, _result_bytes: u64) -> SimDuration {
        self.delay
    }

    fn partition_scheme(&self) -> Option<Arc<dyn PartitionScheme>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_backed_lookup() {
        let svc = RemoteService::new("doubler", SimDuration::from_millis(1), |k| {
            k.as_int()
                .map(|v| vec![Datum::Int(v * 2)])
                .unwrap_or_default()
        });
        assert_eq!(svc.lookup(&Datum::Int(21)), vec![Datum::Int(42)]);
        assert!(svc.lookup(&Datum::Text("x".into())).is_empty());
        // Infallible services never report a miss: an empty answer is
        // still a Hit.
        assert_eq!(
            svc.try_lookup(&Datum::Text("x".into())),
            LookupResult::Hit(vec![])
        );
        assert_eq!(
            svc.serve_time(&Datum::Int(0), 100),
            SimDuration::from_millis(1)
        );
        assert!(svc.partition_scheme().is_none());
    }

    #[test]
    fn table_backed_lookup() {
        let svc = RemoteService::table(
            "geo",
            RemoteService::BASE_DELAY,
            vec![(
                Datum::Text("1.2.3.4".into()),
                vec![Datum::Text("us-west".into())],
            )],
        );
        assert_eq!(
            svc.lookup(&Datum::Text("1.2.3.4".into())),
            vec![Datum::Text("us-west".into())]
        );
        assert_eq!(svc.delay(), SimDuration::from_micros(800));
    }

    #[test]
    fn table_misses_are_distinguishable_from_empty_hits() {
        let svc = RemoteService::table(
            "geo",
            RemoteService::BASE_DELAY,
            vec![
                (Datum::Int(1), vec![Datum::Text("east".into())]),
                (Datum::Int(2), vec![]),
            ],
        );
        assert!(matches!(
            svc.try_lookup(&Datum::Int(1)),
            LookupResult::Hit(v) if v.len() == 1
        ));
        // A key mapped to an empty list answers Hit([]) …
        assert_eq!(svc.try_lookup(&Datum::Int(2)), LookupResult::Hit(vec![]));
        // … while an absent key is a Miss; the infallible view of both is
        // an empty Vec.
        assert_eq!(svc.try_lookup(&Datum::Int(3)), LookupResult::Miss);
        assert!(svc.lookup(&Datum::Int(3)).is_empty());
    }

    #[test]
    fn fallible_services_can_fail() {
        let svc =
            RemoteService::fallible("flaky", RemoteService::BASE_DELAY, |k| match k.as_int() {
                Some(v) if v % 2 == 0 => LookupResult::Hit(vec![Datum::Int(v / 2)]),
                Some(_) => LookupResult::Failed("shard offline".into()),
                None => LookupResult::Miss,
            });
        assert_eq!(
            svc.try_lookup(&Datum::Int(4)),
            LookupResult::Hit(vec![Datum::Int(2)])
        );
        assert!(matches!(
            svc.try_lookup(&Datum::Int(3)),
            LookupResult::Failed(_)
        ));
        // The infallible view degrades a failure to empty, as before.
        assert!(svc.lookup(&Datum::Int(3)).is_empty());
    }
}
